// Mutation tests: every catalog invariant must FIRE when the quantity it
// guards is corrupted. The dominance relations hold by construction in the
// real code (std::min caps), so each test overrides a single AnalysisOracle
// method to return a wrong value and asserts the matching violation is
// reported — proving the checker is not tautologically green.
#include "check/invariants.hpp"

#include "helpers.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace cpa::check {
namespace {

analysis::PlatformConfig fig1_platform()
{
    analysis::PlatformConfig platform;
    platform.num_cores = 2;
    platform.cache_sets = 16;
    return platform;
}

// Options used by most mutation tests: single policy, no simulation, so a
// test failure points at exactly one corrupted quantity.
CheckOptions fast_options()
{
    CheckOptions options;
    options.policies = {analysis::BusPolicy::kFixedPriority};
    options.check_simulation = false;
    return options;
}

// Fig. 1 is never WCRT-schedulable (τ3's isolated demand already exceeds
// its deadline), so the WCRT- and simulation-level mutations need a set the
// real analysis accepts under every policy: long periods, light bus load.
tasks::TaskSet schedulable_set()
{
    return testing::make_task_set(
        2, 16,
        {
            {.core = 0, .pd = 20, .md = 4, .md_residual = 1, .period = 1000,
             .ecb = {0, 1, 2, 3}, .ucb = {1, 2}, .pcb = {0, 3}},
            {.core = 1, .pd = 30, .md = 5, .md_residual = 2, .period = 1500,
             .ecb = {4, 5, 6}, .ucb = {5}, .pcb = {4, 6}},
            {.core = 0, .pd = 40, .md = 6, .md_residual = 3, .period = 2000,
             .ecb = {0, 4, 7}, .ucb = {0}, .pcb = {7}},
        });
}

bool fired(const CheckResult& result, std::string_view invariant)
{
    return std::any_of(result.violations.begin(), result.violations.end(),
                       [&](const Violation& violation) {
                           return violation.invariant == invariant;
                       });
}

std::string dump(const CheckResult& result)
{
    std::string out;
    for (const Violation& violation : result.violations) {
        out += violation.invariant + ": " + violation.detail + "\n";
    }
    return out;
}

// --- structure.*: corrupt the task set itself (no oracle needed) ---------

TEST(CheckMutation, StructureFootprintsFires)
{
    // PCB outside ECB; built without validate() on purpose.
    tasks::TaskSet ts(2, 16);
    tasks::Task task;
    task.name = "bad";
    task.core = 0;
    task.pd = Cycles{2};
    task.md = AccessCount{3};
    task.md_residual = AccessCount{1};
    task.period = Cycles{50};
    task.deadline = Cycles{50};
    task.ecb = util::SetMask::from_indices(16, {0, 1});
    task.ucb = util::SetMask::from_indices(16, {0});
    task.pcb = util::SetMask::from_indices(16, {5}); // not in ECB
    ts.add_task(std::move(task));
    const CheckResult result =
        check_task_set(ts, fig1_platform(), fast_options());
    EXPECT_TRUE(fired(result, "structure.footprints")) << dump(result);
}

TEST(CheckMutation, StructureDemandFires)
{
    tasks::TaskSet ts(2, 16);
    tasks::Task task;
    task.name = "bad";
    task.core = 0;
    task.pd = Cycles{2};
    task.md = AccessCount{3};
    task.md_residual = AccessCount{7}; // MDr > MD
    task.period = Cycles{50};
    task.deadline = Cycles{50};
    task.ecb = util::SetMask(16);
    task.ucb = util::SetMask(16);
    task.pcb = util::SetMask(16);
    ts.add_task(std::move(task));
    const CheckResult result =
        check_task_set(ts, fig1_platform(), fast_options());
    EXPECT_TRUE(fired(result, "structure.demand")) << dump(result);
}

TEST(CheckMutation, StructureWindowsFires)
{
    tasks::TaskSet ts(2, 16);
    tasks::Task task;
    task.name = "bad";
    task.core = 0;
    task.pd = Cycles{2};
    task.md = AccessCount{3};
    task.md_residual = AccessCount{1};
    task.period = Cycles{50};
    task.deadline = Cycles{60}; // D > T
    task.ecb = util::SetMask(16);
    task.ucb = util::SetMask(16);
    task.pcb = util::SetMask(16);
    ts.add_task(std::move(task));
    const CheckResult result =
        check_task_set(ts, fig1_platform(), fast_options());
    EXPECT_TRUE(fired(result, "structure.windows")) << dump(result);
}

// --- demand.* / tables.* / bounds: corrupt one oracle quantity ----------

class MutatedOracle : public AnalysisOracle {
public:
    MutatedOracle(const tasks::TaskSet& ts,
                  const analysis::PlatformConfig& platform)
        : AnalysisOracle(ts, platform)
    {
    }
};

CheckResult run_with(const AnalysisOracle& oracle)
{
    return check_task_set(oracle, fast_options());
}

TEST(CheckMutation, DemandDominanceFires)
{
    const tasks::TaskSet ts = testing::fig1_task_set();
    class Oracle : public MutatedOracle {
        using MutatedOracle::MutatedOracle;
        AccessCount md_hat(std::size_t i, std::int64_t n) const override
        {
            // Exceeds n * MD: the Eq. (10) cap is gone.
            return AnalysisOracle::md_hat(i, n) + AccessCount{n > 0 ? n * 100 : 0};
        }
    } oracle(ts, fig1_platform());
    const CheckResult result = run_with(oracle);
    EXPECT_TRUE(fired(result, "demand.md_hat_dominance")) << dump(result);
}

TEST(CheckMutation, DemandMonotoneFires)
{
    const tasks::TaskSet ts = testing::fig1_task_set();
    class Oracle : public MutatedOracle {
        using MutatedOracle::MutatedOracle;
        AccessCount md_hat(std::size_t, std::int64_t n) const override
        {
            return AccessCount{-n}; // strictly decreasing
        }
    } oracle(ts, fig1_platform());
    const CheckResult result = run_with(oracle);
    EXPECT_TRUE(fired(result, "demand.md_hat_monotone")) << dump(result);
}

TEST(CheckMutation, DemandSubadditiveFires)
{
    const tasks::TaskSet ts = testing::fig1_task_set();
    class Oracle : public MutatedOracle {
        using MutatedOracle::MutatedOracle;
        AccessCount md_hat(std::size_t, std::int64_t n) const override
        {
            return AccessCount{n * n}; // superadditive
        }
    } oracle(ts, fig1_platform());
    const CheckResult result = run_with(oracle);
    EXPECT_TRUE(fired(result, "demand.md_hat_subadditive")) << dump(result);
}

TEST(CheckMutation, GammaShapeFires)
{
    const tasks::TaskSet ts = testing::fig1_task_set();
    class Oracle : public MutatedOracle {
        using MutatedOracle::MutatedOracle;
        AccessCount gamma(std::size_t i, std::size_t j) const override
        {
            // Nonzero CRPD charged against a lower-priority "preempter".
            return j >= i ? AccessCount{3} : AnalysisOracle::gamma(i, j);
        }
    } oracle(ts, fig1_platform());
    const CheckResult result = run_with(oracle);
    EXPECT_TRUE(fired(result, "tables.gamma_shape")) << dump(result);
}

TEST(CheckMutation, CproShapeFiresOnNegativeOverlap)
{
    const tasks::TaskSet ts = testing::fig1_task_set();
    class Oracle : public MutatedOracle {
        using MutatedOracle::MutatedOracle;
        AccessCount cpro_overlap(std::size_t, std::size_t) const override
        {
            return AccessCount{-1};
        }
    } oracle(ts, fig1_platform());
    const CheckResult result = run_with(oracle);
    EXPECT_TRUE(fired(result, "tables.cpro_shape")) << dump(result);
}

TEST(CheckMutation, CproShapeFiresOnCrossCorePairOverlap)
{
    const tasks::TaskSet ts = testing::fig1_task_set();
    class Oracle : public MutatedOracle {
        using MutatedOracle::MutatedOracle;
        AccessCount pair_overlap(std::size_t, std::size_t) const override
        {
            return AccessCount{1}; // also nonzero for cross-core / self pairs
        }
    } oracle(ts, fig1_platform());
    const CheckResult result = run_with(oracle);
    EXPECT_TRUE(fired(result, "tables.cpro_shape")) << dump(result);
}

TEST(CheckMutation, Lemma1DominanceFires)
{
    const tasks::TaskSet ts = testing::fig1_task_set();
    class Oracle : public MutatedOracle {
        using MutatedOracle::MutatedOracle;
        AccessCount bas(const AnalysisConfig& config, std::size_t i,
                        Cycles t) const override
        {
            // Persistence-aware BAS inflated above the plain bound.
            const AccessCount real = AnalysisOracle::bas(config, i, t);
            return config.persistence_aware ? real + AccessCount{50} : real;
        }
    } oracle(ts, fig1_platform());
    const CheckResult result = run_with(oracle);
    EXPECT_TRUE(fired(result, "lemma1.bas_dominance")) << dump(result);
}

TEST(CheckMutation, BasMonotoneFires)
{
    const tasks::TaskSet ts = testing::fig1_task_set();
    class Oracle : public MutatedOracle {
        using MutatedOracle::MutatedOracle;
        AccessCount bas(const AnalysisConfig&, std::size_t,
                        Cycles t) const override
        {
            return AccessCount{std::max<std::int64_t>(0, 100 - t.count())}; // decreasing in t
        }
    } oracle(ts, fig1_platform());
    const CheckResult result = run_with(oracle);
    EXPECT_TRUE(fired(result, "bounds.bas_monotone")) << dump(result);
}

TEST(CheckMutation, Lemma2DominanceFires)
{
    const tasks::TaskSet ts = testing::fig1_task_set();
    class Oracle : public MutatedOracle {
        using MutatedOracle::MutatedOracle;
        AccessCount bao(const AnalysisConfig& config, std::size_t core,
                        std::size_t k, Cycles t,
                        const std::vector<Cycles>& response) const override
        {
            const AccessCount real =
                AnalysisOracle::bao(config, core, k, t, response);
            return config.persistence_aware ? real + AccessCount{25} : real;
        }
    } oracle(ts, fig1_platform());
    const CheckResult result = run_with(oracle);
    EXPECT_TRUE(fired(result, "lemma2.bao_dominance")) << dump(result);
}

TEST(CheckMutation, BatDominatesBasFires)
{
    const tasks::TaskSet ts = testing::fig1_task_set();
    class Oracle : public MutatedOracle {
        using MutatedOracle::MutatedOracle;
        AccessCount bat(const AnalysisConfig& config, std::size_t i,
                        Cycles t,
                        const std::vector<Cycles>&) const override
        {
            // Below the same-config BAS term: same-core accesses un-priced.
            return AnalysisOracle::bas(config, i, t) - AccessCount{1};
        }
    } oracle(ts, fig1_platform());
    const CheckResult result = run_with(oracle);
    EXPECT_TRUE(fired(result, "bat.dominates_bas")) << dump(result);
}

TEST(CheckMutation, BatPersistenceDominanceFires)
{
    const tasks::TaskSet ts = testing::fig1_task_set();
    class Oracle : public MutatedOracle {
        using MutatedOracle::MutatedOracle;
        AccessCount bat(const AnalysisConfig& config, std::size_t i,
                        Cycles t,
                        const std::vector<Cycles>& response) const override
        {
            const AccessCount real =
                AnalysisOracle::bat(config, i, t, response);
            return config.persistence_aware ? real + AccessCount{40} : real;
        }
    } oracle(ts, fig1_platform());
    const CheckResult result = run_with(oracle);
    EXPECT_TRUE(fired(result, "bat.persistence_dominance")) << dump(result);
}

TEST(CheckMutation, WcrtFixedPointFires)
{
    const tasks::TaskSet ts = testing::fig1_task_set();
    class Oracle : public MutatedOracle {
        using MutatedOracle::MutatedOracle;
        analysis::WcrtResult
        wcrt(const AnalysisConfig&) const override
        {
            // Claims schedulability at the isolated demand, ignoring all
            // contention: rhs(R) > R for the tasks with cross-core load.
            analysis::WcrtResult result;
            result.schedulable = true;
            result.stop_reason = analysis::StopReason::kConverged;
            for (const tasks::Task& task : task_set().tasks()) {
                result.response.push_back(
                    task.isolated_demand(platform().d_mem));
            }
            return result;
        }
    } oracle(ts, fig1_platform());
    const CheckResult result = run_with(oracle);
    EXPECT_TRUE(fired(result, "wcrt.fixed_point")) << dump(result);
}

TEST(CheckMutation, WcrtResponseBoundsFires)
{
    const tasks::TaskSet ts = testing::fig1_task_set();
    class Oracle : public MutatedOracle {
        using MutatedOracle::MutatedOracle;
        analysis::WcrtResult
        wcrt(const AnalysisConfig&) const override
        {
            // R below the isolated demand is impossible for a sound bound.
            analysis::WcrtResult result;
            result.schedulable = true;
            result.stop_reason = analysis::StopReason::kConverged;
            result.response.assign(task_set().size(), Cycles{1});
            return result;
        }
    } oracle(ts, fig1_platform());
    const CheckResult result = run_with(oracle);
    EXPECT_TRUE(fired(result, "wcrt.response_bounds")) << dump(result);
}

TEST(CheckMutation, WcrtPersistenceDominanceFiresOnVerdictFlip)
{
    const tasks::TaskSet ts = schedulable_set();
    class Oracle : public MutatedOracle {
        using MutatedOracle::MutatedOracle;
        analysis::WcrtResult
        wcrt(const AnalysisConfig& config) const override
        {
            analysis::WcrtResult result = AnalysisOracle::wcrt(config);
            if (config.persistence_aware) {
                // Persistence-aware analysis "loses" a set the baseline
                // accepts — the refinement of Eq. (16)-(18) forbids this.
                result.schedulable = false;
                result.stop_reason = analysis::StopReason::kConverged;
            }
            return result;
        }
    } oracle(ts, fig1_platform());
    const CheckResult result = run_with(oracle);
    EXPECT_TRUE(fired(result, "wcrt.persistence_dominance")) << dump(result);
}

TEST(CheckMutation, WcrtPersistenceDominanceFiresOnLargerResponses)
{
    const tasks::TaskSet ts = schedulable_set();
    class Oracle : public MutatedOracle {
        using MutatedOracle::MutatedOracle;
        analysis::WcrtResult
        wcrt(const AnalysisConfig& config) const override
        {
            analysis::WcrtResult result = AnalysisOracle::wcrt(config);
            if (config.persistence_aware && result.schedulable &&
                !result.response.empty()) {
                // Far above anything the baseline can report for this set.
                result.response[0] += Cycles{500};
            }
            return result;
        }
    } oracle(ts, fig1_platform());
    const CheckResult result = run_with(oracle);
    EXPECT_TRUE(fired(result, "wcrt.persistence_dominance")) << dump(result);
}

TEST(CheckMutation, SimSoundnessFires)
{
    const tasks::TaskSet ts = schedulable_set();
    class Oracle : public MutatedOracle {
        using MutatedOracle::MutatedOracle;
        sim::SimResult simulate(const sim::SimConfig&) const override
        {
            // Observed responses far above any analytical bound.
            sim::SimResult result;
            const std::size_t n = task_set().size();
            result.max_response.assign(n, Cycles{1'000'000});
            result.jobs_completed.assign(n, 1);
            result.bus_accesses.assign(n, AccessCount{0});
            return result;
        }
    } oracle(ts, fig1_platform());
    CheckOptions options = fast_options();
    options.check_simulation = true;
    const CheckResult result = check_task_set(oracle, options);
    EXPECT_TRUE(fired(result, "sim.response_soundness")) << dump(result);
}

// A corrupted quantity must never pass silently: sanity-check that the
// unmutated oracle with the same options reports nothing, so every firing
// above is attributable to its mutation alone.
TEST(CheckMutation, UnmutatedOracleIsClean)
{
    for (const tasks::TaskSet& ts :
         {testing::fig1_task_set(), schedulable_set()}) {
        const MutatedOracle oracle(ts, fig1_platform());
        CheckOptions options = fast_options();
        options.check_simulation = true;
        const CheckResult result = check_task_set(oracle, options);
        EXPECT_TRUE(result.ok()) << dump(result);
    }
}

} // namespace
} // namespace cpa::check
