// Task-to-core partitioning heuristics.
//
// The paper sidesteps partitioning by generating tasks per core; real
// deployments must choose an assignment, and the choice interacts with the
// paper's analysis in an interesting way: CPRO (Eq. (14)) only sees
// SAME-core evictions, so a placement that separates overlapping cache
// footprints preserves persistence and tightens the bus bounds. The
// kCacheAware heuristic exploits exactly that; the bin-packing classics are
// provided as baselines.
#pragma once

#include "tasks/task.hpp"

#include <string>
#include <vector>

namespace cpa::tasks {

enum class PartitionHeuristic {
    kFirstFit, // decreasing load; first core whose load stays <= 1
    kWorstFit, // decreasing load; always the least-loaded core
    kCacheAware, // least ECB overlap among the near-least-loaded cores
};

[[nodiscard]] std::string to_string(PartitionHeuristic heuristic);

// Assigns a core to every task (mutating task.core), considering tasks in
// order of decreasing load (isolated demand / period at latency d_mem).
// kFirstFit falls back to the least-loaded core when nothing fits below
// utilization 1. The relative priority order of the tasks is not changed.
void partition_tasks(std::vector<Task>& tasks, std::size_t num_cores,
                     PartitionHeuristic heuristic, util::Cycles d_mem);

// Total pairwise same-core ECB overlap of an assignment — the quantity
// kCacheAware greedily minimizes; exposed for tests and benches.
[[nodiscard]] std::size_t same_core_overlap(const std::vector<Task>& tasks,
                                            std::size_t num_cores);

} // namespace cpa::tasks
