
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/program/abstract.cpp" "src/program/CMakeFiles/cpa_program.dir/abstract.cpp.o" "gcc" "src/program/CMakeFiles/cpa_program.dir/abstract.cpp.o.d"
  "/root/repo/src/program/extract.cpp" "src/program/CMakeFiles/cpa_program.dir/extract.cpp.o" "gcc" "src/program/CMakeFiles/cpa_program.dir/extract.cpp.o.d"
  "/root/repo/src/program/program.cpp" "src/program/CMakeFiles/cpa_program.dir/program.cpp.o" "gcc" "src/program/CMakeFiles/cpa_program.dir/program.cpp.o.d"
  "/root/repo/src/program/synthetic.cpp" "src/program/CMakeFiles/cpa_program.dir/synthetic.cpp.o" "gcc" "src/program/CMakeFiles/cpa_program.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/cpa_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/tasks/CMakeFiles/cpa_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cpa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
