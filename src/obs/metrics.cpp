#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace cpa::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

// Per-thread staging buffer; installed by ScopedMetricsBuffer for the
// duration of one parallel trial body.
thread_local MetricsBuffer* t_metrics_buffer = nullptr;

// Generic find-or-create over the heterogeneous maps; heap allocation keeps
// the handed-out references stable across rehashing/rebalancing. Callers
// hold the registry mutex (enforced at the call sites by util::MutexLock).
template <typename Map>
auto& find_or_create(Map& map, std::string_view name)
{
    auto it = map.find(name);
    if (it == map.end()) {
        using Value = typename Map::mapped_type::element_type;
        it = map.emplace(std::string(name), std::make_unique<Value>()).first;
    }
    return *it->second;
}

} // namespace

bool metrics_enabled() noexcept
{
    return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept
{
    g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

MetricsBuffer* current_metrics_buffer() noexcept
{
    return t_metrics_buffer;
}

ScopedMetricsBuffer::ScopedMetricsBuffer(MetricsBuffer& buffer) noexcept
    : previous_(t_metrics_buffer)
{
    t_metrics_buffer = &buffer;
}

ScopedMetricsBuffer::~ScopedMetricsBuffer()
{
    t_metrics_buffer = previous_;
}

void HistogramData::record(std::int64_t value) noexcept
{
    if (count == 0) {
        min = value;
        max = value;
    } else {
        min = std::min(min, value);
        max = std::max(max, value);
    }
    count += 1;
    sum += value;
    buckets[histogram_bucket(value)] += 1;
}

namespace {

// Shared percentile math over raw bucket counts: for rank q*count, walk the
// cumulative distribution and report the bucket's upper bound, clamped to
// the exact [min, max] envelope so estimates never escape observed values.
HistogramStat stat_from_buckets(
    std::int64_t count, std::int64_t sum, std::int64_t min, std::int64_t max,
    const std::array<std::int64_t, HistogramData::kBuckets>& buckets)
{
    HistogramStat stat;
    stat.count = count;
    stat.sum = sum;
    if (count <= 0) {
        return stat;
    }
    stat.min = min;
    stat.max = max;

    const auto percentile = [&](double q) {
        const auto rank = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(
                   std::ceil(q * static_cast<double>(count))));
        std::int64_t cumulative = 0;
        for (std::size_t i = 0; i < buckets.size(); ++i) {
            cumulative += buckets[i];
            if (cumulative >= rank) {
                // Upper bound of bucket i: 0 for bucket 0, else 2^i - 1.
                const std::int64_t upper =
                    i == 0 ? 0
                           : static_cast<std::int64_t>(
                                 (std::uint64_t{1} << std::min<std::size_t>(
                                      i, 62)) -
                                 1);
                return std::clamp(upper, min, max);
            }
        }
        return max;
    };
    stat.p50 = percentile(0.50);
    stat.p90 = percentile(0.90);
    stat.p99 = percentile(0.99);
    return stat;
}

} // namespace

HistogramStat HistogramData::stat() const noexcept
{
    return stat_from_buckets(count, sum, count > 0 ? min : 0,
                             count > 0 ? max : 0, buckets);
}

void Histogram::merge(const HistogramData& data) noexcept
{
    if (data.count == 0) {
        return;
    }
    count_.fetch_add(data.count, std::memory_order_relaxed);
    sum_.fetch_add(data.sum, std::memory_order_relaxed);
    for (std::size_t i = 0; i < data.buckets.size(); ++i) {
        if (data.buckets[i] != 0) {
            buckets_[i].fetch_add(data.buckets[i],
                                  std::memory_order_relaxed);
        }
    }
    update_min(data.min);
    update_max(data.max);
}

HistogramStat Histogram::stat() const noexcept
{
    std::array<std::int64_t, HistogramData::kBuckets> buckets{};
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    const std::int64_t count = count_.load(std::memory_order_relaxed);
    return stat_from_buckets(
        count, sum_.load(std::memory_order_relaxed),
        count > 0 ? min_.load(std::memory_order_relaxed) : 0,
        count > 0 ? max_.load(std::memory_order_relaxed) : 0, buckets);
}

void Histogram::reset() noexcept
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(INT64_MAX, std::memory_order_relaxed);
    max_.store(INT64_MIN, std::memory_order_relaxed);
    for (auto& bucket : buckets_) {
        bucket.store(0, std::memory_order_relaxed);
    }
}

void MetricsBuffer::flush_to_global()
{
    MetricsRegistry& registry = MetricsRegistry::global();
    for (const auto& [name, delta] : counters_) {
        registry.counter(name).add(delta);
    }
    for (const auto& [name, value] : gauges_) {
        registry.gauge(name).set(value);
    }
    for (const auto& [name, stat] : timers_) {
        registry.timer(name).add(stat.total_ns, stat.count);
    }
    for (const auto& [name, data] : histograms_) {
        registry.histogram(name).merge(data);
    }
    counters_.clear();
    gauges_.clear();
    timers_.clear();
    histograms_.clear();
}

MetricsRegistry& MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

Counter& MetricsRegistry::counter(std::string_view name)
{
    util::MutexLock lock(mutex_);
    return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name)
{
    util::MutexLock lock(mutex_);
    return find_or_create(gauges_, name);
}

Timer& MetricsRegistry::timer(std::string_view name)
{
    util::MutexLock lock(mutex_);
    return find_or_create(timers_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name)
{
    util::MutexLock lock(mutex_);
    return find_or_create(histograms_, name);
}

MetricsSnapshot MetricsRegistry::snapshot() const
{
    util::MutexLock lock(mutex_);
    MetricsSnapshot snap;
    for (const auto& [name, counter] : counters_) {
        snap.counters.emplace(name, counter->value());
    }
    for (const auto& [name, gauge] : gauges_) {
        snap.gauges.emplace(name, gauge->value());
    }
    for (const auto& [name, timer] : timers_) {
        snap.timers.emplace(name,
                            TimerStat{timer->total_ns(), timer->count()});
    }
    for (const auto& [name, histogram] : histograms_) {
        snap.histograms.emplace(name, histogram->stat());
    }
    return snap;
}

void MetricsRegistry::reset()
{
    util::MutexLock lock(mutex_);
    for (const auto& [name, counter] : counters_) {
        counter->reset();
    }
    for (const auto& [name, gauge] : gauges_) {
        gauge->reset();
    }
    for (const auto& [name, timer] : timers_) {
        timer->reset();
    }
    for (const auto& [name, histogram] : histograms_) {
        histogram->reset();
    }
}

} // namespace cpa::obs
