file(REMOVE_RECURSE
  "../bench/ablation_partitioning"
  "../bench/ablation_partitioning.pdb"
  "CMakeFiles/ablation_partitioning.dir/ablation_partitioning.cpp.o"
  "CMakeFiles/ablation_partitioning.dir/ablation_partitioning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
