// Interval-lifted analysis model for the verify scenario family.
//
// AbstractScenario evaluates the same formulas as analysis/{demand,
// interference,bus_bounds,wcrt} but over intervals, with the interference
// geometry (gamma / CPRO tables) in closed form — possible because
// make_scenario uses nested prefix footprints and a fixed task layout, so
// the table entries collapse to indicator * footprint (see scenario.hpp).
// The prover combines these enclosures with algebraic margin rewrites
// (properties.cpp) and concrete AnalysisOracle samples: an interval proof
// here certifies the *model*; agreement with the sampled implementation is
// what ties the model to the code under test.
#pragma once

#include "analysis/config.hpp"
#include "verify/box.hpp"
#include "verify/interval.hpp"
#include "verify/scenario.hpp"

#include <cstddef>
#include <vector>

namespace cpa::verify {

// Scenario parameters over a sub-box with the core count pinned to a
// concrete value (the prover enumerates cores; everything else stays an
// interval). Footprint dims are stored both as raw box values and as the
// clamped effective values make_scenario realizes.
struct AbstractScenario {
    std::size_t cores = 0;
    IAccess md;          // MD_i
    IAccess md_residual; // min(box mdr, MD)
    IAccess pcb;         // accesses_from_blocks(min(box pcb, ecb_eff))
    IAccess ucb;         // accesses_from_blocks(min(box ucb, ecb_eff))
    ICount ecb_blocks;   // min(box ecb, cache size), in blocks
    ICount ucb_raw;      // box values before the subset clamps
    ICount pcb_raw;
    ICount mdr_raw;
    ICycles pd;
    ICycles period; // == deadline; jitter is 0 in this family
    ICycles d_mem;
    ICount n_jobs;  // quantifier for the M-hat invariants
    ICycles window; // quantifier t for the bus-bound invariants
    ICycles dt;     // window increment for the monotonicity invariant
    std::int64_t slot_size = 2;

    [[nodiscard]] std::size_t task_count() const { return 2 * cores; }

    // Priority partner of τ_idx on its core: the round-0 task idx < cores
    // is shadowed by idx + cores, and vice versa.
    [[nodiscard]] std::size_t partner(std::size_t idx) const
    {
        return idx < cores ? idx + cores : idx - cores;
    }

    // gamma(i, j): with identical prefix masks the ECB-union CRPD is the
    // whole UCB footprint exactly when τ_j can preempt an affected task at
    // level i — i.e. j runs in round 0 and level i is past j's partner.
    [[nodiscard]] IAccess gamma(std::size_t i, std::size_t j) const;

    // cpro_overlap(j, level): |PCB_j ∩ ∪ ECB| over the evictors at `level`;
    // nonzero exactly when the same-core partner of τ_j is included.
    [[nodiscard]] IAccess cpro_overlap(std::size_t j, std::size_t level) const;

    // M̂D(n) = min(n·MD, n·MDʳ + |PCB|): non-decreasing in every argument,
    // so the lo/hi corner evaluations are the hull (monotone rule).
    [[nodiscard]] IAccess md_hat(const ICount& n) const;

    // ρ̂_{j,level}(n) = max(0, n-1) · cpro_overlap (CPRO-union, Eq. 14).
    [[nodiscard]] IAccess rho_hat(std::size_t j, std::size_t level,
                                  const ICount& n) const;
};

[[nodiscard]] AbstractScenario make_abstract(const ParamBox& box,
                                             std::int64_t cores);

// Interval lift of analysis::BusContentionAnalysis, term by term.
class AbstractBounds {
public:
    AbstractBounds(const AbstractScenario& scenario,
                   const analysis::AnalysisConfig& config)
        : s_(scenario), config_(config)
    {
    }

    [[nodiscard]] IAccess bas(std::size_t i, const ICycles& t) const;
    [[nodiscard]] IAccess bao(std::size_t core, std::size_t k,
                              const ICycles& t,
                              const std::vector<ICycles>& response) const;
    [[nodiscard]] IAccess bao_lower(std::size_t core, std::size_t i,
                                    const ICycles& t,
                                    const std::vector<ICycles>& response) const;
    [[nodiscard]] IAccess bat(std::size_t i, const ICycles& t,
                              const std::vector<ICycles>& response) const;

    // Lemma 2 carry-in/carry-out window term for one other-core task.
    [[nodiscard]] IAccess
    other_core_task_accesses(std::size_t k, std::size_t l, const ICycles& t,
                             const std::vector<ICycles>& response) const;

    // Certified lower bounds on the persistence gap (baseline minus aware)
    // of the corresponding bound. Both follow the rewrite
    //   a - min(a, b) = max(0, a - b) >= 0,
    // applied to the Lemma 1/2 demand caps, so the returned lo endpoint is
    // non-negative whenever the box is (the machine-checked core of the
    // dominance proofs in properties.cpp).
    [[nodiscard]] IAccess bas_persistence_slack(std::size_t i,
                                                const ICycles& t) const;
    [[nodiscard]] IAccess
    bao_persistence_slack(std::size_t core, std::size_t k, const ICycles& t,
                          const std::vector<ICycles>& response) const;
    [[nodiscard]] IAccess bao_lower_persistence_slack(
        std::size_t core, std::size_t i, const ICycles& t,
        const std::vector<ICycles>& response) const;

private:
    [[nodiscard]] IAccess
    other_core_persistence_slack(std::size_t k, std::size_t l,
                                 const ICycles& t,
                                 const std::vector<ICycles>& response) const;

    const AbstractScenario& s_;
    analysis::AnalysisConfig config_;
};

// Isolated demand enclosure PD + MD·d_mem (the Eq. 19 starting point).
[[nodiscard]] ICycles isolated_demand(const AbstractScenario& s);

// Outcome of the abstract Eq. 19 fixed point over a sub-box.
enum class AbstractSchedulability {
    kAllSchedulable,   // every point converges with R_i <= D_i
    kAllUnschedulable, // every point's isolated demand already misses D
    kUnknown,          // the box straddles the boundary (or no convergence)
};

struct AbstractWcrt {
    AbstractSchedulability verdict = AbstractSchedulability::kUnknown;
    std::vector<ICycles> response; // per-task enclosure (when schedulable)
    std::size_t sweeps = 0;
};

// Ascends the hi endpoints of the response enclosures through the interval
// rhs until post-fixed (a widening to "unknown" caps divergence). Sound
// because every concrete iterate at every point of the box is dominated by
// the corresponding abstract hi iterate, and the concrete solver's result
// is the supremum of its iterate chain.
[[nodiscard]] AbstractWcrt abstract_wcrt(const AbstractScenario& s,
                                         const analysis::AnalysisConfig& config);

} // namespace cpa::verify
