// Umbrella header of the observability layer: the compile-time gate and the
// hot-path macros.
//
// Two gates keep instrumentation out of the analysis cost model:
//
//  1. Compile time: building with -DCPA_OBS_DISABLE (CMake option -DCPA_OBS=OFF)
//     expands every macro below to nothing, so instrumented translation units
//     are bit-identical to uninstrumented ones.
//  2. Run time: with observability compiled in (the default), every macro
//     first reads one relaxed atomic flag (`metrics_enabled()` /
//     `Tracer::global().active()`). The flag is off unless a caller opted in
//     (CLI --metrics-out/--trace, bench::BenchReport, tests), so the steady
//     state of an uninstrumented run is a single predictable branch per site
//     — verified by the `analysis_perf` bench staying within noise of the
//     uninstrumented build.
//
// Counter references are cached in a function-local static per call site, so
// the registry's name lookup happens once per site, not per event.
#pragma once

#if defined(CPA_OBS_DISABLE)
#define CPA_OBS_ENABLED 0
#else
#define CPA_OBS_ENABLED 1
#endif

// The headers are included unconditionally so guarded trace blocks
// (`if (CPA_TRACE_ENABLED(...)) { ... }`) still type-check when disabled —
// the constant-false condition lets the compiler drop the block entirely.
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

#if CPA_OBS_ENABLED

// Adds `delta` to the named counter when metrics are enabled. Inside a
// parallel trial (a MetricsBuffer installed on this thread) the event is
// staged thread-locally and merged later in trial-index order, which keeps
// the buffered path off the shared registry entirely.
#define CPA_COUNT_ADD(name, delta)                                          \
    do {                                                                    \
        if (::cpa::obs::metrics_enabled()) {                                \
            if (::cpa::obs::MetricsBuffer* cpa_obs_buffer_ =                \
                    ::cpa::obs::current_metrics_buffer()) {                 \
                cpa_obs_buffer_->add_counter(name, delta);                  \
            } else {                                                        \
                static ::cpa::obs::Counter& cpa_obs_counter_ =              \
                    ::cpa::obs::MetricsRegistry::global().counter(name);    \
                cpa_obs_counter_.add(delta);                                \
            }                                                               \
        }                                                                   \
    } while (0)

// Increments the named counter by one when metrics are enabled.
#define CPA_COUNT(name) CPA_COUNT_ADD(name, 1)

// Sets the named gauge when metrics are enabled. Gauges are last-writer-wins
// — the one metric kind whose value depends on ordering — so the buffered
// path (merged in trial-index order) is what keeps parallel runs identical
// to serial ones.
#define CPA_GAUGE_SET(name, value)                                          \
    do {                                                                    \
        if (::cpa::obs::metrics_enabled()) {                                \
            if (::cpa::obs::MetricsBuffer* cpa_obs_buffer_ =                \
                    ::cpa::obs::current_metrics_buffer()) {                 \
                cpa_obs_buffer_->set_gauge(name, value);                    \
            } else {                                                        \
                static ::cpa::obs::Gauge& cpa_obs_gauge_ =                  \
                    ::cpa::obs::MetricsRegistry::global().gauge(name);      \
                cpa_obs_gauge_.set(value);                                  \
            }                                                               \
        }                                                                   \
    } while (0)

// Records one sample into the named log-bucketed histogram when metrics are
// enabled (surfaced as count/sum/min/max/p50/p90/p99 in reports). Same
// buffered-vs-registry routing as counters; names ending "_ns" are
// wall-clock by convention and treated as noise by comparison tooling.
#define CPA_HISTOGRAM(name, value)                                          \
    do {                                                                    \
        if (::cpa::obs::metrics_enabled()) {                                \
            if (::cpa::obs::MetricsBuffer* cpa_obs_buffer_ =                \
                    ::cpa::obs::current_metrics_buffer()) {                 \
                cpa_obs_buffer_->record_histogram(name, value);             \
            } else {                                                        \
                static ::cpa::obs::Histogram& cpa_obs_histogram_ =          \
                    ::cpa::obs::MetricsRegistry::global().histogram(name);  \
                cpa_obs_histogram_.record(value);                           \
            }                                                               \
        }                                                                   \
    } while (0)

// Accumulates wall-clock time spent in the enclosing scope into the named
// timer metric (total nanoseconds + invocation count).
#define CPA_OBS_CONCAT_(a, b) a##b
#define CPA_OBS_CONCAT(a, b) CPA_OBS_CONCAT_(a, b)
#define CPA_SCOPED_TIMER(name)                                              \
    ::cpa::obs::ScopedTimer CPA_OBS_CONCAT(cpa_obs_timer_, __LINE__)(name)

// Hierarchical profiling span covering the enclosing scope, recorded into
// the Chrome-trace profiler (obs/profiler.hpp) when `cpa --profile-out`
// armed it. `name` (and `key` in the _ARG form) must be string literals.
// Inactive spans cost one relaxed atomic load.
#define CPA_PROFILE_SPAN(name)                                              \
    ::cpa::obs::ScopedSpan CPA_OBS_CONCAT(cpa_obs_span_, __LINE__)(name)

// Span with one integer argument (e.g. the outer-iteration index), shown
// in the viewer's args panel.
#define CPA_PROFILE_SPAN_ARG(name, key, value)                              \
    ::cpa::obs::ScopedSpan CPA_OBS_CONCAT(cpa_obs_span_, __LINE__)(         \
        name, key, static_cast<std::int64_t>(value))

// True when a trace sink is installed and `subsystem` passes its filter.
// Call sites guard event construction with this so the formatting cost is
// only paid when someone is listening.
#define CPA_TRACE_ENABLED(subsystem)                                        \
    (::cpa::obs::Tracer::global().enabled(subsystem))

#else // !CPA_OBS_ENABLED

#define CPA_COUNT_ADD(name, delta)                                          \
    do {                                                                    \
    } while (0)
#define CPA_COUNT(name)                                                     \
    do {                                                                    \
    } while (0)
#define CPA_GAUGE_SET(name, value)                                          \
    do {                                                                    \
    } while (0)
#define CPA_HISTOGRAM(name, value)                                          \
    do {                                                                    \
    } while (0)
#define CPA_SCOPED_TIMER(name)                                              \
    do {                                                                    \
    } while (0)
#define CPA_PROFILE_SPAN(name)                                              \
    do {                                                                    \
    } while (0)
#define CPA_PROFILE_SPAN_ARG(name, key, value)                              \
    do {                                                                    \
    } while (0)
#define CPA_TRACE_ENABLED(subsystem) false

#endif // CPA_OBS_ENABLED
