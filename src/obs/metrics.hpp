// Process-wide metrics registry: monotonically increasing counters, gauges,
// and wall-clock timers, addressed by dotted names ("wcrt.inner_iterations",
// "bat.fp.calls", ...).
//
// Design constraints (see docs/observability.md for the metric catalog):
//  * Hot-path friendly: increments are relaxed atomics on references that
//    call sites cache once (obs.hpp macros), so an enabled counter costs one
//    atomic add and a disabled one a single predictable branch.
//  * Stable references: metric objects are heap-allocated and never removed,
//    so a `Counter&` captured in a function-local static stays valid for the
//    process lifetime. `reset()` zeroes values without invalidating anything.
//  * Registration is mutex-protected (cold path only).
#pragma once

#include "util/thread_safety.hpp"

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace cpa::obs {

// Global runtime switch for metric recording. Off by default; flipped on by
// the CLI (--metrics-out), bench::BenchReport, or tests.
[[nodiscard]] bool metrics_enabled() noexcept;
void set_metrics_enabled(bool enabled) noexcept;

class Counter {
public:
    void add(std::int64_t delta) noexcept
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::int64_t> value_{0};
};

class Gauge {
public:
    void set(std::int64_t value) noexcept
    {
        value_.store(value, std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::int64_t> value_{0};
};

// Accumulated wall-clock time: total nanoseconds across all recorded scopes
// plus how many scopes contributed (so snapshots can derive a mean).
class Timer {
public:
    void record_ns(std::int64_t ns) noexcept
    {
        total_ns_.fetch_add(ns, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
    }
    // Merges a pre-aggregated contribution (a MetricsBuffer flush).
    void add(std::int64_t total_ns, std::int64_t count) noexcept
    {
        total_ns_.fetch_add(total_ns, std::memory_order_relaxed);
        count_.fetch_add(count, std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t total_ns() const noexcept
    {
        return total_ns_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t count() const noexcept
    {
        return count_.load(std::memory_order_relaxed);
    }
    void reset() noexcept
    {
        total_ns_.store(0, std::memory_order_relaxed);
        count_.store(0, std::memory_order_relaxed);
    }

private:
    std::atomic<std::int64_t> total_ns_{0};
    std::atomic<std::int64_t> count_{0};
};

struct TimerStat {
    std::int64_t total_ns = 0;
    std::int64_t count = 0;
};

// Aggregated view of one histogram, as surfaced in reports. Percentiles are
// upper-bound estimates from the log2 buckets, clamped to [min, max], so
// p50 <= p90 <= p99 <= max always holds (schema-checked by
// scripts/check_bench_json.py).
struct HistogramStat {
    std::int64_t count = 0;
    std::int64_t sum = 0;
    std::int64_t min = 0;
    std::int64_t max = 0;
    std::int64_t p50 = 0;
    std::int64_t p90 = 0;
    std::int64_t p99 = 0;
};

// Pre-aggregated histogram contribution: the raw bucket counts plus the
// exact extrema, used by MetricsBuffer staging and by direct producers
// (bench::BenchReport) that aggregate outside the registry.
struct HistogramData {
    static constexpr std::size_t kBuckets = 64;

    std::int64_t count = 0;
    std::int64_t sum = 0;
    std::int64_t min = 0; // only meaningful when count > 0
    std::int64_t max = 0;
    std::array<std::int64_t, kBuckets> buckets{};

    void record(std::int64_t value) noexcept;
    [[nodiscard]] HistogramStat stat() const noexcept;
};

// Maps a sample to its log2 bucket: bucket 0 holds values <= 0, bucket i
// holds [2^(i-1), 2^i - 1]. Same spacing for the 200 ns inner solve and the
// 2 s sweep point, which is what makes one histogram type serve latency
// nanoseconds and iteration counts alike.
[[nodiscard]] constexpr std::size_t histogram_bucket(std::int64_t value) noexcept
{
    if (value <= 0) {
        return 0;
    }
    return static_cast<std::size_t>(
        std::bit_width(static_cast<std::uint64_t>(value)));
}

// Concurrent log-bucketed histogram: relaxed atomic bucket counts plus
// exact min/max/sum, so recording stays lock-free on the hot path while
// snapshots can derive p50/p90/p99 bounds. Values are int64 samples
// (nanoseconds, iteration counts); negative samples clamp into bucket 0.
class Histogram {
public:
    void record(std::int64_t value) noexcept
    {
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
        buckets_[histogram_bucket(value)].fetch_add(
            1, std::memory_order_relaxed);
        update_min(value);
        update_max(value);
    }

    // Merges a pre-aggregated contribution (a MetricsBuffer flush or a
    // direct producer). Commutative, so flush order cannot matter.
    void merge(const HistogramData& data) noexcept;

    [[nodiscard]] HistogramStat stat() const noexcept;
    void reset() noexcept;

private:
    void update_min(std::int64_t value) noexcept
    {
        std::int64_t seen = min_.load(std::memory_order_relaxed);
        while (value < seen && !min_.compare_exchange_weak(
                                   seen, value, std::memory_order_relaxed)) {
        }
    }
    void update_max(std::int64_t value) noexcept
    {
        std::int64_t seen = max_.load(std::memory_order_relaxed);
        while (value > seen && !max_.compare_exchange_weak(
                                   seen, value, std::memory_order_relaxed)) {
        }
    }

    std::atomic<std::int64_t> count_{0};
    std::atomic<std::int64_t> sum_{0};
    std::atomic<std::int64_t> min_{INT64_MAX};
    std::atomic<std::int64_t> max_{INT64_MIN};
    std::array<std::atomic<std::int64_t>, HistogramData::kBuckets> buckets_{};
};

// Point-in-time copy of every registered metric, for reports.
struct MetricsSnapshot {
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, TimerStat> timers;
    std::map<std::string, HistogramStat> histograms;
};

class MetricsRegistry {
public:
    // The process-wide registry used by the obs.hpp macros.
    [[nodiscard]] static MetricsRegistry& global();

    // Find-or-create; the returned reference is stable forever.
    [[nodiscard]] Counter& counter(std::string_view name)
        CPA_EXCLUDES(mutex_);
    [[nodiscard]] Gauge& gauge(std::string_view name) CPA_EXCLUDES(mutex_);
    [[nodiscard]] Timer& timer(std::string_view name) CPA_EXCLUDES(mutex_);
    [[nodiscard]] Histogram& histogram(std::string_view name)
        CPA_EXCLUDES(mutex_);

    [[nodiscard]] MetricsSnapshot snapshot() const CPA_EXCLUDES(mutex_);

    // Zeroes every metric value. Registered names (and references handed
    // out) survive, so call sites keep working across resets.
    void reset() CPA_EXCLUDES(mutex_);

private:
    mutable util::Mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
        CPA_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
        CPA_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_
        CPA_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
        CPA_GUARDED_BY(mutex_);
};

// Single-thread staging area for metric events, used by the parallel trial
// engine (obs/parallel.hpp). While installed on a thread (ScopedMetricsBuffer
// / current_metrics_buffer), the obs.hpp macros deposit events here instead
// of in the global registry; the orchestrator later flushes one buffer per
// trial *in trial-index order*, so gauges (last-writer-wins) land exactly as
// a serial run would have written them. Not thread-safe by design — each
// buffer belongs to exactly one in-flight trial.
class MetricsBuffer {
public:
    void add_counter(std::string_view name, std::int64_t delta)
    {
        find_or_zero(counters_, name) += delta;
    }
    void set_gauge(std::string_view name, std::int64_t value)
    {
        find_or_zero(gauges_, name) = value;
        // Distinguishes "set to 0" from "never set": only touched gauges are
        // replayed into the registry.
    }
    void record_timer_ns(std::string_view name, std::int64_t ns)
    {
        TimerStat& stat = timers_
                              .try_emplace(std::string(name))
                              .first->second;
        stat.total_ns += ns;
        stat.count += 1;
    }
    void record_histogram(std::string_view name, std::int64_t value)
    {
        histograms_.try_emplace(std::string(name))
            .first->second.record(value);
    }

    [[nodiscard]] bool empty() const noexcept
    {
        return counters_.empty() && gauges_.empty() && timers_.empty() &&
               histograms_.empty();
    }

    // Replays the buffered events into the global registry and clears the
    // buffer. The caller sequences flushes (trial-index order) to keep
    // gauge values deterministic.
    void flush_to_global();

private:
    template <typename Map>
    static std::int64_t& find_or_zero(Map& map, std::string_view name)
    {
        auto it = map.find(name);
        if (it == map.end()) {
            it = map.emplace(std::string(name), 0).first;
        }
        return it->second;
    }

    std::map<std::string, std::int64_t, std::less<>> counters_;
    std::map<std::string, std::int64_t, std::less<>> gauges_;
    std::map<std::string, TimerStat, std::less<>> timers_;
    std::map<std::string, HistogramData, std::less<>> histograms_;
};

// The buffer installed on the calling thread, or nullptr when metric events
// should go straight to the global registry (the default).
[[nodiscard]] MetricsBuffer* current_metrics_buffer() noexcept;

// RAII install/restore of a thread's metrics buffer.
class ScopedMetricsBuffer {
public:
    explicit ScopedMetricsBuffer(MetricsBuffer& buffer) noexcept;
    ~ScopedMetricsBuffer();
    ScopedMetricsBuffer(const ScopedMetricsBuffer&) = delete;
    ScopedMetricsBuffer& operator=(const ScopedMetricsBuffer&) = delete;

private:
    MetricsBuffer* previous_ = nullptr;
};

// RAII wall-clock scope feeding a Timer metric plus a latency histogram
// named "<name>_ns" (the per-phase duration distributions surfaced as
// p50/p90/p99 in run reports; the "_ns" suffix marks them wall-clock so
// comparison tooling knows to treat their values as noise). Inactive (and
// skipping the clock reads) when metrics are disabled at construction time.
// Routes into the thread's MetricsBuffer when one is installed.
class ScopedTimer {
public:
    explicit ScopedTimer(std::string_view name)
    {
        if (metrics_enabled()) {
            if ((buffer_ = current_metrics_buffer()) != nullptr) {
                name_ = name;
            } else {
                name_ = name;
                timer_ = &MetricsRegistry::global().timer(name);
                histogram_ = &MetricsRegistry::global().histogram(
                    std::string(name) + "_ns");
            }
            start_ = std::chrono::steady_clock::now();
        }
    }
    ~ScopedTimer()
    {
        if (timer_ == nullptr && buffer_ == nullptr) {
            return;
        }
        const auto elapsed = std::chrono::steady_clock::now() - start_;
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count();
        if (buffer_ != nullptr) {
            buffer_->record_timer_ns(name_, ns);
            buffer_->record_histogram(name_ + "_ns", ns);
        } else {
            timer_->record_ns(ns);
            histogram_->record(ns);
        }
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    Timer* timer_ = nullptr;
    Histogram* histogram_ = nullptr;
    MetricsBuffer* buffer_ = nullptr;
    std::string name_;
    std::chrono::steady_clock::time_point start_{};
};

} // namespace cpa::obs
