// Warm-vs-cold bench for the batch analysis service: runs the same
// policy x CRPD x CPRO request matrix (each configuration issued twice, the
// revisit pattern batch drivers produce) through
//
//   cold: the one-shot path the CLI used to pay per request — fresh
//         InterferenceTables + compute_wcrt for every single request;
//   warm: one analysis::Session per task set — tables cached per CRPD
//         method, repeated configurations served from the result memo.
//
// Both modes fold every response into an FNV-1a checksum; the bench exits
// nonzero if they diverge, so the warm path is pinned byte-identical to the
// cold path at bench scale. The checksums, schedulable counts and the
// session's table/memo counters are emitted as deterministic obs counters
// for the bench_compare.py trajectory gate; wall clock is advisory there,
// but the warm-vs-cold speedup itself is hard-gated here (>= 2x by
// default; CPA_BENCH_MIN_SPEEDUP overrides, 0 disables — the margin is
// structural: cold builds task_sets x requests tables, warm builds
// task_sets x CRPD-methods).
#include "analysis/request.hpp"
#include "analysis/session.hpp"
#include "benchdata/generator.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

#include "common.hpp"

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

namespace {

using namespace cpa;

struct ModeOutcome {
    std::uint64_t checksum = 14695981039346656037ULL; // FNV-1a offset basis
    std::int64_t schedulable = 0;
    std::int64_t table_builds = 0;
    std::int64_t memo_hits = 0;
    double seconds = 0.0;

    void fold(std::uint64_t value)
    {
        checksum ^= value;
        checksum *= 1099511628211ULL; // FNV-1a prime
    }

    void fold_result(const analysis::SessionResult& result)
    {
        fold(result.schedulable ? 1 : 2);
        fold(result.bus_ok ? 1 : 2);
        for (const util::Cycles r : result.wcrt.response) {
            fold(static_cast<std::uint64_t>(util::to_metric(r)));
        }
        schedulable += result.schedulable ? 1 : 0;
    }
};

// The request matrix: every policy x CRPD x CPRO combination, issued twice.
std::vector<analysis::AnalysisRequest> request_matrix()
{
    std::vector<analysis::AnalysisRequest> requests;
    for (int repeat = 0; repeat < 2; ++repeat) {
        for (const analysis::BusPolicy policy :
             {analysis::BusPolicy::kFixedPriority,
              analysis::BusPolicy::kRoundRobin, analysis::BusPolicy::kTdma}) {
            for (const analysis::CrpdMethod crpd :
                 {analysis::CrpdMethod::kEcbUnion,
                  analysis::CrpdMethod::kUcbOnly,
                  analysis::CrpdMethod::kEcbOnly}) {
                for (const analysis::CproMethod cpro :
                     {analysis::CproMethod::kUnion,
                      analysis::CproMethod::kJobBound}) {
                    analysis::AnalysisRequest request;
                    request.config.policy = policy;
                    request.config.crpd = crpd;
                    request.config.cpro = cpro;
                    requests.push_back(request);
                }
            }
        }
    }
    return requests;
}

tasks::TaskSet make_set(std::size_t index,
                        const benchdata::GenerationConfig& gen,
                        const std::vector<benchdata::BenchmarkParams>& pool)
{
    util::Rng rng(util::seed_for(3031, index));
    return benchdata::generate_task_set(rng, gen, pool);
}

// What the CLI used to do per request: rebuild the interference tables and
// run the fixed point from scratch.
ModeOutcome run_cold(std::size_t task_sets,
                     const std::vector<analysis::AnalysisRequest>& requests,
                     const analysis::PlatformConfig& platform,
                     const benchdata::GenerationConfig& gen,
                     const std::vector<benchdata::BenchmarkParams>& pool)
{
    ModeOutcome outcome;
    for (std::size_t n = 0; n < task_sets; ++n) {
        const tasks::TaskSet ts = make_set(n, gen, pool);
        const auto start = std::chrono::steady_clock::now();
        for (const analysis::AnalysisRequest& request : requests) {
            const analysis::InterferenceTables tables(ts,
                                                      request.config.crpd);
            outcome.table_builds += 1;
            analysis::SessionResult result;
            result.wcrt =
                analysis::compute_wcrt(ts, platform, request.config, tables);
            result.schedulable = result.wcrt.schedulable;
            outcome.fold_result(result);
        }
        outcome.seconds += std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    }
    return outcome;
}

ModeOutcome run_warm(std::size_t task_sets,
                     const std::vector<analysis::AnalysisRequest>& requests,
                     const analysis::PlatformConfig& platform,
                     const benchdata::GenerationConfig& gen,
                     const std::vector<benchdata::BenchmarkParams>& pool)
{
    ModeOutcome outcome;
    for (std::size_t n = 0; n < task_sets; ++n) {
        tasks::TaskSet ts = make_set(n, gen, pool);
        const auto start = std::chrono::steady_clock::now();
        analysis::Session session(std::move(ts), platform);
        for (const analysis::AnalysisRequest& request : requests) {
            outcome.fold_result(session.analyze(request));
        }
        outcome.seconds += std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
        outcome.table_builds +=
            static_cast<std::int64_t>(session.stats().table_misses);
        outcome.memo_hits +=
            static_cast<std::int64_t>(session.stats().result_hits);
    }
    return outcome;
}

// Deterministic counters for the trajectory gate, recorded via the registry
// directly because the timed loops run with metrics disabled.
void record(const std::string& mode, const ModeOutcome& outcome)
{
    auto& registry = obs::MetricsRegistry::global();
    const std::string prefix = "batch_bench." + mode;
    // Counters are int64; drop the checksum's top bit so the JSON value
    // stays non-negative.
    registry.counter(prefix + ".checksum")
        .add(static_cast<std::int64_t>(outcome.checksum >> 1));
    registry.counter(prefix + ".schedulable").add(outcome.schedulable);
    registry.counter(prefix + ".table_builds").add(outcome.table_builds);
    registry.counter(prefix + ".memo_hits").add(outcome.memo_hits);
}

double min_speedup_from_env()
{
    const char* raw = std::getenv("CPA_BENCH_MIN_SPEEDUP");
    if (raw == nullptr) {
        return 2.0;
    }
    return std::strtod(raw, nullptr);
}

} // namespace

int main()
{
    // enable_metrics=false: the timed loops measure the uninstrumented hot
    // path; the gate counters are recorded explicitly afterwards.
    bench::BenchReport bench_report("batch", /*enable_metrics=*/false);

    const std::size_t task_sets = experiments::task_sets_from_env(6);
    const analysis::PlatformConfig platform = bench::default_platform();
    benchdata::GenerationConfig gen = bench::default_generation();
    gen.per_core_utilization = 0.4;
    const auto pool = benchdata::derive_all(benchdata::full_benchmark_table(),
                                            gen.cache_sets);
    const std::vector<analysis::AnalysisRequest> requests = request_matrix();

    bench_report.section("cold");
    const ModeOutcome cold =
        run_cold(task_sets, requests, platform, gen, pool);
    bench_report.section("warm");
    const ModeOutcome warm =
        run_warm(task_sets, requests, platform, gen, pool);

    bool failed = false;
    if (cold.checksum != warm.checksum ||
        cold.schedulable != warm.schedulable) {
        std::cerr << "batch: WARM/COLD MISMATCH (checksum " << cold.checksum
                  << " vs " << warm.checksum << ", schedulable "
                  << cold.schedulable << " vs " << warm.schedulable << ")\n";
        failed = true;
    }
    record("cold", cold);
    record("warm", warm);

    const double speedup =
        warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0;
    const double min_speedup = min_speedup_from_env();
    if (min_speedup > 0.0 && speedup < min_speedup) {
        std::cerr << "batch: warm speedup " << speedup
                  << "x below required " << min_speedup << "x\n";
        failed = true;
    }

    util::TextTable table({"mode", "task sets", "requests", "table builds",
                           "memo hits", "seconds", "speedup"});
    const std::string request_count =
        std::to_string(task_sets * requests.size());
    table.add_row({"cold", std::to_string(task_sets), request_count,
                   std::to_string(cold.table_builds),
                   std::to_string(cold.memo_hits),
                   util::TextTable::num(cold.seconds, 4), "1.00"});
    table.add_row({"warm", std::to_string(task_sets), request_count,
                   std::to_string(warm.table_builds),
                   std::to_string(warm.memo_hits),
                   util::TextTable::num(warm.seconds, 4),
                   util::TextTable::num(speedup, 2)});

    std::cout << "== Batch analysis service: cold per-request vs warm "
                 "Session ==\n"
              << "(identical checksums required; speedup = cold/warm wall "
                 "time)\n";
    table.print(std::cout);
    bench::maybe_write_csv("batch-service", table);
    return failed ? 1 : 0;
}
