// Quickstart: the worked example of the paper's Fig. 1, end to end.
//
// Part 1 rebuilds the exact bound arithmetic of Section IV (BAS = 32 vs 26,
// BAO = 24 vs 9). Part 2 runs the full WCRT analysis (Eq. 19) on the same
// tasks with relaxed periods, with and without cache persistence, under a
// round-robin bus.
//
//   $ ./examples/quickstart
#include "analysis/bus_bounds.hpp"
#include "analysis/demand.hpp"
#include "analysis/wcrt.hpp"
#include "tasks/task.hpp"
#include "util/set_mask.hpp"

#include <iostream>

using namespace cpa;
using namespace cpa::util::literals;

namespace {

constexpr std::size_t kCacheSets = 16;

tasks::Task make_task(std::string name, std::size_t core, util::Cycles pd,
                      util::AccessCount md, util::AccessCount mdr,
                      util::Cycles period,
                      std::vector<std::size_t> ecb,
                      std::vector<std::size_t> ucb,
                      std::vector<std::size_t> pcb)
{
    tasks::Task task;
    task.name = std::move(name);
    task.core = core;
    task.pd = pd;
    task.md = md;
    task.md_residual = mdr;
    task.period = period;
    task.deadline = period;
    task.ecb = util::SetMask::from_indices(kCacheSets, ecb);
    task.ucb = util::SetMask::from_indices(kCacheSets, ucb);
    task.pcb = util::SetMask::from_indices(kCacheSets, pcb);
    return task;
}

// The Fig. 1 system: τ1, τ2 on core 0, τ3 on core 1, τ1 highest priority.
tasks::TaskSet fig1_system(util::Cycles t1, util::Cycles t2, util::Cycles t3)
{
    tasks::TaskSet ts(/*num_cores=*/2, kCacheSets);
    ts.add_task(make_task("tau1", 0, 4_cy, 6_acc, 1_acc, t1,
                          {5, 6, 7, 8, 9, 10}, {5, 6, 7, 8, 10},
                          {5, 6, 7, 8, 10}));
    ts.add_task(make_task("tau2", 0, 32_cy, 8_acc, 8_acc, t2,
                          {1, 2, 3, 4, 5, 6}, {5, 6}, {}));
    ts.add_task(make_task("tau3", 1, 4_cy, 6_acc, 1_acc, t3,
                          {5, 6, 7, 8, 9, 10}, {5, 6, 7, 8, 10},
                          {5, 6, 7, 8, 10}));
    ts.validate();
    return ts;
}

analysis::PlatformConfig example_platform()
{
    analysis::PlatformConfig platform;
    platform.num_cores = 2;
    platform.cache_sets = kCacheSets;
    platform.d_mem = 1_cy;  // one cycle per access, as in the example
    platform.slot_size = 1; // RR slot size s = 1
    return platform;
}

analysis::AnalysisConfig rr_config(bool persistence)
{
    analysis::AnalysisConfig config;
    config.policy = analysis::BusPolicy::kRoundRobin;
    config.persistence_aware = persistence;
    return config;
}

} // namespace

int main()
{
    const analysis::PlatformConfig platform = example_platform();

    // --- Part 1: the paper's bound arithmetic ----------------------------
    {
        const tasks::TaskSet ts = fig1_system(10_cy, 60_cy, 6_cy);
        const analysis::InterferenceTables tables(
            ts, analysis::CrpdMethod::kEcbUnion);

        std::cout << "Fig. 1 arithmetic (window t = 25, tau3 estimate R3 = 5)\n"
                  << "  CRPD gamma_{2,1} (Eq. 2):           "
                  << tables.gamma(1, 0) << "\n"
                  << "  MD_hat(3 jobs of tau1) (Eq. 10):    "
                  << analysis::md_hat(ts[0], 3) << "   (vs 3*MD = "
                  << 3 * ts[0].md << ")\n"
                  << "  CPRO rho_hat_{1,2}(3) (Eq. 14):     "
                  << tables.rho_hat(0, 1, 3) << "\n";

        const std::vector<util::Cycles> response{10_cy, 60_cy, 5_cy};
        for (const bool persistence : {false, true}) {
            const analysis::BusContentionAnalysis bounds(
                ts, platform, rr_config(persistence), tables);
            std::cout << (persistence ? "  with persistence:   "
                                      : "  without persistence:")
                      << "  BAS_2 = " << bounds.bas(1, 25_cy)
                      << ", BAO_3 = " << bounds.bao(1, 2, 25_cy, response)
                      << "\n";
        }
        std::cout << "  (paper: BAS 32 -> 26, BAO 24 -> 9)\n\n";
    }

    // --- Part 2: full WCRT analysis on relaxed periods -------------------
    {
        const tasks::TaskSet ts = fig1_system(40_cy, 240_cy, 30_cy);
        for (const bool persistence : {false, true}) {
            const analysis::WcrtResult wcrt =
                analysis::compute_wcrt(ts, platform, rr_config(persistence));
            std::cout << "WCRT under RR bus, "
                      << (persistence ? "with" : "without")
                      << " persistence (outer iterations: "
                      << wcrt.outer_iterations << "):\n";
            for (std::size_t i = 0; i < ts.size(); ++i) {
                std::cout << "  " << ts[i].name << ": R="
                          << wcrt.response[i] << " D=" << ts[i].deadline
                          << (wcrt.response[i] <= ts[i].deadline
                                  ? "  (meets deadline)"
                                  : "  (DEADLINE MISS)")
                          << "\n";
            }
        }
    }
    return 0;
}
