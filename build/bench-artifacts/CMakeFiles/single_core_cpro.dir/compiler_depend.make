# Empty compiler generated dependencies file for single_core_cpro.
# This may be replaced when dependencies are built.
