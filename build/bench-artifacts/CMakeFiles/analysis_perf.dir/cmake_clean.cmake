file(REMOVE_RECURSE
  "../bench/analysis_perf"
  "../bench/analysis_perf.pdb"
  "CMakeFiles/analysis_perf.dir/analysis_perf.cpp.o"
  "CMakeFiles/analysis_perf.dir/analysis_perf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
