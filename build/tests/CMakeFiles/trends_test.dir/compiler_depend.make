# Empty compiler generated dependencies file for trends_test.
# This may be replaced when dependencies are built.
