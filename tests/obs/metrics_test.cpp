#include "obs/metrics.hpp"

#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace cpa::obs {
namespace {

// Restores the metrics-enabled flag and zeroes the registry around each
// test so the process-wide singleton doesn't leak state between tests.
class MetricsTest : public ::testing::Test {
protected:
    void SetUp() override
    {
        MetricsRegistry::global().reset();
        set_metrics_enabled(true);
    }
    void TearDown() override
    {
        set_metrics_enabled(false);
        MetricsRegistry::global().reset();
    }
};

TEST_F(MetricsTest, CounterRegisterIncrementSnapshot)
{
    Counter& counter = MetricsRegistry::global().counter("test.counter");
    counter.add(3);
    counter.add(4);
    EXPECT_EQ(counter.value(), 7);

    const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
    ASSERT_TRUE(snap.counters.contains("test.counter"));
    EXPECT_EQ(snap.counters.at("test.counter"), 7);
}

TEST_F(MetricsTest, SameNameReturnsSameCounter)
{
    Counter& a = MetricsRegistry::global().counter("test.same");
    Counter& b = MetricsRegistry::global().counter("test.same");
    EXPECT_EQ(&a, &b);
    a.add(1);
    EXPECT_EQ(b.value(), 1);
}

TEST_F(MetricsTest, ResetZeroesValuesButKeepsReferencesValid)
{
    Counter& counter = MetricsRegistry::global().counter("test.reset");
    Gauge& gauge = MetricsRegistry::global().gauge("test.reset_gauge");
    counter.add(5);
    gauge.set(9);
    MetricsRegistry::global().reset();
    EXPECT_EQ(counter.value(), 0);
    EXPECT_EQ(gauge.value(), 0);
    counter.add(2); // the pre-reset reference still works
    EXPECT_EQ(MetricsRegistry::global().counter("test.reset").value(), 2);
}

TEST_F(MetricsTest, GaugeHoldsLastValue)
{
    Gauge& gauge = MetricsRegistry::global().gauge("test.gauge");
    gauge.set(10);
    gauge.set(3);
    EXPECT_EQ(gauge.value(), 3);
    const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
    EXPECT_EQ(snap.gauges.at("test.gauge"), 3);
}

TEST_F(MetricsTest, ScopedTimerAccumulatesTotalAndCount)
{
    {
        ScopedTimer outer("test.timer");
        ScopedTimer inner("test.timer"); // two scopes feed one metric
    }
    const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
    ASSERT_TRUE(snap.timers.contains("test.timer"));
    EXPECT_EQ(snap.timers.at("test.timer").count, 2);
    EXPECT_GE(snap.timers.at("test.timer").total_ns, 0);
}

TEST_F(MetricsTest, ScopedTimerIsInertWhenDisabled)
{
    set_metrics_enabled(false);
    {
        ScopedTimer timer("test.disabled_timer");
    }
    const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
    EXPECT_FALSE(snap.timers.contains("test.disabled_timer"));
}

TEST_F(MetricsTest, CountMacroRespectsRuntimeFlag)
{
    set_metrics_enabled(false);
    for (int i = 0; i < 3; ++i) {
        CPA_COUNT("test.macro_gated");
    }
    set_metrics_enabled(true);
    CPA_COUNT("test.macro_gated");
#if CPA_OBS_ENABLED
    EXPECT_EQ(
        MetricsRegistry::global().counter("test.macro_gated").value(), 1);
#else
    EXPECT_EQ(
        MetricsRegistry::global().counter("test.macro_gated").value(), 0);
#endif
}

TEST_F(MetricsTest, BufferStagesEventsAwayFromRegistry)
{
    MetricsBuffer buffer;
    {
        ScopedMetricsBuffer scope(buffer);
        ASSERT_EQ(current_metrics_buffer(), &buffer);
        CPA_COUNT_ADD("test.buffered", 5);
        CPA_GAUGE_SET("test.buffered_gauge", 42);
        {
            ScopedTimer timer("test.buffered_timer");
        }
    }
    EXPECT_EQ(current_metrics_buffer(), nullptr);
#if CPA_OBS_ENABLED
    // Nothing reached the registry while staged...
    MetricsSnapshot snap = MetricsRegistry::global().snapshot();
    EXPECT_FALSE(snap.counters.contains("test.buffered"));
    EXPECT_FALSE(snap.gauges.contains("test.buffered_gauge"));
    EXPECT_FALSE(snap.timers.contains("test.buffered_timer"));
    EXPECT_FALSE(buffer.empty());
    // ...until the flush.
    buffer.flush_to_global();
    EXPECT_TRUE(buffer.empty());
    snap = MetricsRegistry::global().snapshot();
    EXPECT_EQ(snap.counters.at("test.buffered"), 5);
    EXPECT_EQ(snap.gauges.at("test.buffered_gauge"), 42);
    EXPECT_EQ(snap.timers.at("test.buffered_timer").count, 1);
#endif
}

TEST_F(MetricsTest, BufferFlushOrderDecidesGaugeValue)
{
    // Gauges are last-writer-wins; flushing buffers in trial-index order
    // must reproduce the serial outcome no matter which "trial" ran first.
    MetricsBuffer first;
    MetricsBuffer second;
    first.set_gauge("test.order_gauge", 1);
    second.set_gauge("test.order_gauge", 2);
    first.add_counter("test.order_counter", 10);
    second.add_counter("test.order_counter", 20);
    // "second" finished before "first", but index order flushes first, then
    // second — the gauge lands on trial 1's value, as a serial run would.
    second.record_timer_ns("test.order_timer", 7);
    first.flush_to_global();
    second.flush_to_global();
    const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
    EXPECT_EQ(snap.gauges.at("test.order_gauge"), 2);
    EXPECT_EQ(snap.counters.at("test.order_counter"), 30);
    EXPECT_EQ(snap.timers.at("test.order_timer").count, 1);
    EXPECT_EQ(snap.timers.at("test.order_timer").total_ns, 7);
}

TEST_F(MetricsTest, ScopedBufferNestsAndRestores)
{
    MetricsBuffer outer;
    MetricsBuffer inner;
    {
        ScopedMetricsBuffer outer_scope(outer);
        {
            ScopedMetricsBuffer inner_scope(inner);
            EXPECT_EQ(current_metrics_buffer(), &inner);
        }
        EXPECT_EQ(current_metrics_buffer(), &outer);
    }
    EXPECT_EQ(current_metrics_buffer(), nullptr);
}

TEST_F(MetricsTest, ConcurrentIncrementsAreNotLost)
{
    Counter& counter = MetricsRegistry::global().counter("test.threads");
    constexpr int kThreads = 4;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&counter] {
            for (int i = 0; i < kPerThread; ++i) {
                counter.add(1);
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

} // namespace
} // namespace cpa::obs
