file(REMOVE_RECURSE
  "../bench/soundness_sim"
  "../bench/soundness_sim.pdb"
  "CMakeFiles/soundness_sim.dir/soundness_sim.cpp.o"
  "CMakeFiles/soundness_sim.dir/soundness_sim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soundness_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
