// Process-wide metrics registry: monotonically increasing counters, gauges,
// and wall-clock timers, addressed by dotted names ("wcrt.inner_iterations",
// "bat.fp.calls", ...).
//
// Design constraints (see docs/observability.md for the metric catalog):
//  * Hot-path friendly: increments are relaxed atomics on references that
//    call sites cache once (obs.hpp macros), so an enabled counter costs one
//    atomic add and a disabled one a single predictable branch.
//  * Stable references: metric objects are heap-allocated and never removed,
//    so a `Counter&` captured in a function-local static stays valid for the
//    process lifetime. `reset()` zeroes values without invalidating anything.
//  * Registration is mutex-protected (cold path only).
#pragma once

#include "util/thread_safety.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace cpa::obs {

// Global runtime switch for metric recording. Off by default; flipped on by
// the CLI (--metrics-out), bench::BenchReport, or tests.
[[nodiscard]] bool metrics_enabled() noexcept;
void set_metrics_enabled(bool enabled) noexcept;

class Counter {
public:
    void add(std::int64_t delta) noexcept
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::int64_t> value_{0};
};

class Gauge {
public:
    void set(std::int64_t value) noexcept
    {
        value_.store(value, std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::int64_t> value_{0};
};

// Accumulated wall-clock time: total nanoseconds across all recorded scopes
// plus how many scopes contributed (so snapshots can derive a mean).
class Timer {
public:
    void record_ns(std::int64_t ns) noexcept
    {
        total_ns_.fetch_add(ns, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t total_ns() const noexcept
    {
        return total_ns_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t count() const noexcept
    {
        return count_.load(std::memory_order_relaxed);
    }
    void reset() noexcept
    {
        total_ns_.store(0, std::memory_order_relaxed);
        count_.store(0, std::memory_order_relaxed);
    }

private:
    std::atomic<std::int64_t> total_ns_{0};
    std::atomic<std::int64_t> count_{0};
};

struct TimerStat {
    std::int64_t total_ns = 0;
    std::int64_t count = 0;
};

// Point-in-time copy of every registered metric, for reports.
struct MetricsSnapshot {
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, TimerStat> timers;
};

class MetricsRegistry {
public:
    // The process-wide registry used by the obs.hpp macros.
    [[nodiscard]] static MetricsRegistry& global();

    // Find-or-create; the returned reference is stable forever.
    [[nodiscard]] Counter& counter(std::string_view name)
        CPA_EXCLUDES(mutex_);
    [[nodiscard]] Gauge& gauge(std::string_view name) CPA_EXCLUDES(mutex_);
    [[nodiscard]] Timer& timer(std::string_view name) CPA_EXCLUDES(mutex_);

    [[nodiscard]] MetricsSnapshot snapshot() const CPA_EXCLUDES(mutex_);

    // Zeroes every metric value. Registered names (and references handed
    // out) survive, so call sites keep working across resets.
    void reset() CPA_EXCLUDES(mutex_);

private:
    mutable util::Mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
        CPA_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
        CPA_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_
        CPA_GUARDED_BY(mutex_);
};

// RAII wall-clock scope feeding a Timer metric. Inactive (and skipping the
// clock reads) when metrics are disabled at construction time.
class ScopedTimer {
public:
    explicit ScopedTimer(std::string_view name)
    {
        if (metrics_enabled()) {
            timer_ = &MetricsRegistry::global().timer(name);
            start_ = std::chrono::steady_clock::now();
        }
    }
    ~ScopedTimer()
    {
        if (timer_ != nullptr) {
            const auto elapsed = std::chrono::steady_clock::now() - start_;
            timer_->record_ns(
                std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                    .count());
        }
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    Timer* timer_ = nullptr;
    std::chrono::steady_clock::time_point start_{};
};

} // namespace cpa::obs
