// Program-level simulator: cores execute real Program reference traces
// through real private caches.
//
// The parameter-level simulator (simulator.hpp) *assumes* the task-model
// semantics (a job needs MD / MDʳ accesses, preemption reloads UCB∩ECB...).
// This simulator derives all cache behavior from first principles instead:
// each fetch of the running job's trace is looked up in the core's
// direct-mapped I-cache; misses go to the shared bus; persistence, CRPD and
// CPRO all *emerge* from the cache contents. That closes the validation
// loop: parameters extracted from the same programs (program/extract.hpp)
// feed the analytical bounds, and this simulator checks the bounds against
// ground-truth executions.
//
// Execution semantics:
//  * jobs are released periodically from the per-task offsets (default 0)
//    and dispatched preemptively by task priority per core;
//  * a fetch that hits costs cycles_per_fetch on the core; a miss stalls
//    the core for one bus access (FP/RR/TDMA/Perfect arbitration, shared
//    BusArbiter) and then costs cycles_per_fetch;
//  * hits have no side effects in a direct-mapped cache, so runs of hits
//    execute as one compute chunk; preemption can interrupt a chunk at any
//    cycle (partial fetch progress is preserved as long as the fetch still
//    hits on resumption);
//  * caches are NOT flushed between jobs — that is the whole point.
#pragma once

#include "analysis/config.hpp"
#include "program/program.hpp"
#include "util/units.hpp"

#include <cstdint>
#include <vector>

namespace cpa::sim {

using analysis::BusPolicy;
using analysis::PlatformConfig;
using util::AccessCount;
using util::Cycles;
using util::TaskId;

// One task of the program-level workload. Priority = position in the vector
// (index 0 = highest), mirroring tasks::TaskSet.
struct ProgramTask {
    const program::Program* program = nullptr; // must outlive the simulation
    std::size_t core = 0;
    Cycles period;
    Cycles deadline; // 0 = implicit (period)
    Cycles offset;   // first release
    // Block-address displacement: the task's code is linked at
    // base + block for every block of the program (models distinct load
    // addresses of different tasks; drives which cache sets they fight for).
    std::size_t address_base = 0;
};

struct ProgramSimConfig {
    BusPolicy policy = BusPolicy::kFixedPriority;
    Cycles horizon;
    bool stop_on_deadline_miss = true;
};

struct ProgramSimResult {
    std::vector<Cycles> max_response;
    std::vector<std::int64_t> jobs_completed;
    std::vector<AccessCount> bus_accesses; // = cache misses per task
    std::vector<AccessCount> cache_hits;
    bool deadline_missed = false;
    // The first task observed to miss, or kNoMissedTask (simulator.hpp).
    TaskId missed_task = TaskId::invalid();
};

// Runs the program-level simulation. Alternatives in the programs are
// resolved with the default selector (branch 0).
[[nodiscard]] ProgramSimResult
simulate_programs(const std::vector<ProgramTask>& workload,
                  const PlatformConfig& platform,
                  const ProgramSimConfig& config);

} // namespace cpa::sim
