#include "tasks/task.hpp"

#include <algorithm>
#include <stdexcept>

namespace cpa::tasks {

TaskSet::TaskSet(std::size_t num_cores, std::size_t cache_sets)
    : num_cores_(num_cores), cache_sets_(cache_sets), per_core_(num_cores)
{
    if (num_cores == 0) {
        throw std::invalid_argument("TaskSet: need at least one core");
    }
    if (cache_sets == 0) {
        throw std::invalid_argument("TaskSet: need at least one cache set");
    }
}

void TaskSet::add_task(Task task)
{
    if (task.core >= num_cores_) {
        throw std::invalid_argument("TaskSet::add_task: invalid core index");
    }
    if (task.ecb.universe() != cache_sets_ ||
        task.ucb.universe() != cache_sets_ ||
        task.pcb.universe() != cache_sets_) {
        throw std::invalid_argument(
            "TaskSet::add_task: footprint universe != cache_sets");
    }
    per_core_[task.core].push_back(tasks_.size());
    tasks_.push_back(std::move(task));
}

const std::vector<std::size_t>& TaskSet::tasks_on_core(std::size_t core) const
{
    if (core >= num_cores_) {
        throw std::out_of_range("TaskSet::tasks_on_core: invalid core");
    }
    return per_core_[core];
}

double TaskSet::core_utilization(std::size_t core, Cycles d_mem) const
{
    double total = 0.0;
    for (const std::size_t i : tasks_on_core(core)) {
        const Task& task = tasks_[i];
        total += util::to_double(task.isolated_demand(d_mem)) /
                 util::to_double(task.period);
    }
    return total;
}

double TaskSet::bus_utilization(Cycles d_mem) const
{
    double total = 0.0;
    for (const Task& task : tasks_) {
        total += util::to_double(task.md * d_mem) /
                 util::to_double(task.period);
    }
    return total;
}

void TaskSet::rebuild_core_index()
{
    for (auto& list : per_core_) {
        list.clear();
    }
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        per_core_[tasks_[i].core].push_back(i);
    }
}

void TaskSet::assign_priorities_deadline_monotonic()
{
    std::stable_sort(tasks_.begin(), tasks_.end(),
                     [](const Task& a, const Task& b) {
                         return a.deadline < b.deadline;
                     });
    rebuild_core_index();
}

void TaskSet::assign_priorities_rate_monotonic()
{
    std::stable_sort(tasks_.begin(), tasks_.end(),
                     [](const Task& a, const Task& b) {
                         return a.period < b.period;
                     });
    rebuild_core_index();
}

void TaskSet::validate() const
{
    for (const Task& task : tasks_) {
        if (task.pd < Cycles{0} || task.md < AccessCount{0} ||
            task.md_residual < AccessCount{0}) {
            throw std::invalid_argument("Task: negative demand");
        }
        if (task.md_residual > task.md) {
            throw std::invalid_argument("Task: MDr exceeds MD");
        }
        if (task.period <= Cycles{0} || task.deadline <= Cycles{0}) {
            throw std::invalid_argument("Task: period/deadline must be > 0");
        }
        if (task.deadline > task.period) {
            throw std::invalid_argument(
                "Task: deadline exceeds period (constrained-deadline model)");
        }
        if (task.jitter < Cycles{0} ||
            task.jitter + task.deadline > task.period) {
            throw std::invalid_argument(
                "Task: jitter must satisfy 0 <= J and J + D <= T");
        }
        if (!task.ucb.is_subset_of(task.ecb)) {
            throw std::invalid_argument("Task: UCB not a subset of ECB");
        }
        if (!task.pcb.is_subset_of(task.ecb)) {
            throw std::invalid_argument("Task: PCB not a subset of ECB");
        }
        if (task.core >= num_cores_) {
            throw std::invalid_argument("Task: invalid core index");
        }
    }
}

} // namespace cpa::tasks
