// RED: with CPA_CHECKED_ARITH, an overflowing constexpr Quantity sum must
// not compile — detail::checked_add detects the wrap and calls the trap,
// which is not a constant expression.
#include "util/units.hpp"

#include <limits>

using cpa::util::Cycles;

constexpr Cycles max_cycles{std::numeric_limits<std::int64_t>::max()};
constexpr Cycles overflowed = max_cycles + Cycles{1};

int main()
{
    return static_cast<int>(cpa::util::to_metric(overflowed) & 1);
}
