#include "util/set_mask.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <stdexcept>

namespace cpa::util {
namespace {

TEST(SetMask, StartsEmpty)
{
    const SetMask mask(256);
    EXPECT_EQ(mask.universe(), 256u);
    EXPECT_EQ(mask.popcount(), 0u);
    EXPECT_TRUE(mask.empty());
}

TEST(SetMask, InsertAndContains)
{
    SetMask mask(100);
    mask.insert(0);
    mask.insert(63);
    mask.insert(64);
    mask.insert(99);
    EXPECT_TRUE(mask.contains(0));
    EXPECT_TRUE(mask.contains(63));
    EXPECT_TRUE(mask.contains(64));
    EXPECT_TRUE(mask.contains(99));
    EXPECT_FALSE(mask.contains(1));
    EXPECT_EQ(mask.popcount(), 4u);
}

TEST(SetMask, InsertIsIdempotent)
{
    SetMask mask(10);
    mask.insert(5);
    mask.insert(5);
    EXPECT_EQ(mask.popcount(), 1u);
}

TEST(SetMask, EraseRemovesElement)
{
    SetMask mask(10);
    mask.insert(5);
    mask.erase(5);
    EXPECT_FALSE(mask.contains(5));
    EXPECT_TRUE(mask.empty());
}

TEST(SetMask, OutOfRangeThrows)
{
    SetMask mask(10);
    EXPECT_THROW(mask.insert(10), std::out_of_range);
    EXPECT_THROW(mask.erase(10), std::out_of_range);
    EXPECT_THROW((void)mask.contains(10), std::out_of_range);
}

TEST(SetMask, UniverseMismatchThrows)
{
    SetMask a(10);
    const SetMask b(11);
    EXPECT_THROW(a |= b, std::invalid_argument);
    EXPECT_THROW(a &= b, std::invalid_argument);
    EXPECT_THROW((void)a.intersection_count(b), std::invalid_argument);
}

TEST(SetMask, UnionCombinesElements)
{
    SetMask a = SetMask::from_indices(128, {1, 2, 3});
    const SetMask b = SetMask::from_indices(128, {3, 4, 100});
    a |= b;
    EXPECT_EQ(a.popcount(), 5u);
    EXPECT_TRUE(a.contains(100));
}

TEST(SetMask, IntersectionKeepsCommonElements)
{
    SetMask a = SetMask::from_indices(64, {1, 2, 3, 10});
    const SetMask b = SetMask::from_indices(64, {2, 3, 11});
    a &= b;
    EXPECT_EQ(a.to_indices(), (std::vector<std::size_t>{2, 3}));
}

TEST(SetMask, DifferenceRemovesElements)
{
    SetMask a = SetMask::from_indices(64, {1, 2, 3});
    const SetMask b = SetMask::from_indices(64, {2, 9});
    a -= b;
    EXPECT_EQ(a.to_indices(), (std::vector<std::size_t>{1, 3}));
}

TEST(SetMask, IntersectionCountMatchesMaterializedIntersection)
{
    const SetMask a = SetMask::from_indices(300, {0, 64, 128, 192, 256, 299});
    const SetMask b = SetMask::from_indices(300, {64, 192, 299, 5});
    EXPECT_EQ(a.intersection_count(b), 3u);
    EXPECT_EQ((a & b).popcount(), 3u);
}

TEST(SetMask, IntersectsDetectsOverlap)
{
    const SetMask a = SetMask::from_indices(64, {5, 6});
    const SetMask b = SetMask::from_indices(64, {6, 7});
    const SetMask c = SetMask::from_indices(64, {8});
    EXPECT_TRUE(a.intersects(b));
    EXPECT_FALSE(a.intersects(c));
}

TEST(SetMask, SubsetRelation)
{
    const SetMask small = SetMask::from_indices(64, {5, 6});
    const SetMask big = SetMask::from_indices(64, {5, 6, 7});
    EXPECT_TRUE(small.is_subset_of(big));
    EXPECT_FALSE(big.is_subset_of(small));
    EXPECT_TRUE(small.is_subset_of(small));
    EXPECT_TRUE(SetMask(64).is_subset_of(small)); // empty set
}

TEST(SetMask, WrappedRangeWithoutWrap)
{
    SetMask mask(16);
    mask.insert_wrapped_range(3, 4);
    EXPECT_EQ(mask.to_indices(), (std::vector<std::size_t>{3, 4, 5, 6}));
}

TEST(SetMask, WrappedRangeWrapsAroundEnd)
{
    SetMask mask(8);
    mask.insert_wrapped_range(6, 4);
    EXPECT_EQ(mask.to_indices(), (std::vector<std::size_t>{0, 1, 6, 7}));
}

TEST(SetMask, WrappedRangeFullUniverse)
{
    SetMask mask(8);
    mask.insert_wrapped_range(5, 8);
    EXPECT_EQ(mask.popcount(), 8u);
    mask.clear();
    mask.insert_wrapped_range(5, 100); // longer than universe saturates
    EXPECT_EQ(mask.popcount(), 8u);
}

TEST(SetMask, WrappedRangeOffsetBeyondUniverse)
{
    SetMask mask(8);
    mask.insert_wrapped_range(13, 2); // 13 % 8 = 5
    EXPECT_EQ(mask.to_indices(), (std::vector<std::size_t>{5, 6}));
}

TEST(SetMask, EqualityComparesContentAndUniverse)
{
    const SetMask a = SetMask::from_indices(64, {1, 2});
    const SetMask b = SetMask::from_indices(64, {1, 2});
    const SetMask c = SetMask::from_indices(64, {1});
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
}

TEST(SetMask, RotatedShiftsModuloUniverse)
{
    const SetMask mask = SetMask::from_indices(8, {0, 6, 7});
    const SetMask shifted = mask.rotated(3);
    EXPECT_EQ(shifted.to_indices(), (std::vector<std::size_t>{1, 2, 3}));
    EXPECT_EQ(mask.rotated(0), mask);
    EXPECT_EQ(mask.rotated(8), mask);
    EXPECT_EQ(mask.rotated(11), shifted);
}

TEST(SetMask, RotationPreservesCount)
{
    const SetMask mask = SetMask::from_indices(100, {0, 13, 64, 99});
    for (const std::size_t offset : {1u, 50u, 99u, 150u}) {
        EXPECT_EQ(mask.rotated(offset).popcount(), mask.popcount()) << offset;
    }
}

TEST(SetMask, ClearEmptiesMask)
{
    SetMask mask = SetMask::from_indices(64, {1, 2, 3});
    mask.clear();
    EXPECT_TRUE(mask.empty());
    EXPECT_EQ(mask.universe(), 64u);
}

class SetMaskUniverseTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SetMaskUniverseTest, CountMatchesInsertedAcrossWordBoundaries)
{
    const std::size_t universe = GetParam();
    SetMask mask(universe);
    std::size_t inserted = 0;
    for (std::size_t i = 0; i < universe; i += 3) {
        mask.insert(i);
        ++inserted;
    }
    EXPECT_EQ(mask.popcount(), inserted);
    EXPECT_EQ(mask.to_indices().size(), inserted);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SetMaskUniverseTest,
                         ::testing::Values(1, 32, 63, 64, 65, 127, 128, 256,
                                           1024, 1025));

// Randomized differential test against std::set as the reference model:
// every operation must agree with naive set semantics.
TEST(SetMask, AgreesWithStdSetReference)
{
    std::mt19937_64 rng(20200309);
    for (int round = 0; round < 20; ++round) {
        const std::size_t universe = 1 + rng() % 300;
        SetMask mask_a(universe);
        SetMask mask_b(universe);
        std::set<std::size_t> ref_a;
        std::set<std::size_t> ref_b;

        for (int op = 0; op < 200; ++op) {
            const std::size_t index = rng() % universe;
            switch (rng() % 5) {
            case 0:
                mask_a.insert(index);
                ref_a.insert(index);
                break;
            case 1:
                mask_b.insert(index);
                ref_b.insert(index);
                break;
            case 2:
                mask_a.erase(index);
                ref_a.erase(index);
                break;
            case 3: {
                const std::size_t length = rng() % universe;
                mask_a.insert_wrapped_range(index, length);
                for (std::size_t k = 0; k < length; ++k) {
                    ref_a.insert((index + k) % universe);
                }
                break;
            }
            case 4:
                EXPECT_EQ(mask_a.contains(index), ref_a.count(index) > 0);
                break;
            }
        }

        EXPECT_EQ(mask_a.popcount(), ref_a.size());
        EXPECT_EQ(mask_b.popcount(), ref_b.size());

        std::set<std::size_t> ref_intersection;
        for (const std::size_t v : ref_a) {
            if (ref_b.count(v) > 0) {
                ref_intersection.insert(v);
            }
        }
        EXPECT_EQ(mask_a.intersection_count(mask_b),
                  ref_intersection.size());
        EXPECT_EQ(mask_a.intersects(mask_b), !ref_intersection.empty());

        std::set<std::size_t> ref_union = ref_a;
        ref_union.insert(ref_b.begin(), ref_b.end());
        EXPECT_EQ((mask_a | mask_b).popcount(), ref_union.size());

        std::set<std::size_t> ref_difference;
        for (const std::size_t v : ref_a) {
            if (ref_b.count(v) == 0) {
                ref_difference.insert(v);
            }
        }
        EXPECT_EQ((mask_a - mask_b).popcount(), ref_difference.size());

        const std::vector<std::size_t> indices = mask_a.to_indices();
        EXPECT_TRUE(std::equal(indices.begin(), indices.end(),
                               ref_a.begin(), ref_a.end()));
        EXPECT_EQ(mask_a.is_subset_of(mask_a | mask_b), true);
    }
}

} // namespace
} // namespace cpa::util
