file(REMOVE_RECURSE
  "CMakeFiles/cpa_benchdata.dir/benchmark.cpp.o"
  "CMakeFiles/cpa_benchdata.dir/benchmark.cpp.o.d"
  "CMakeFiles/cpa_benchdata.dir/generator.cpp.o"
  "CMakeFiles/cpa_benchdata.dir/generator.cpp.o.d"
  "libcpa_benchdata.a"
  "libcpa_benchdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa_benchdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
