file(REMOVE_RECURSE
  "libcpa_cli.a"
)
