#include "sim/arbiter.hpp"

#include <gtest/gtest.h>

namespace cpa::sim {
namespace {

using analysis::BusPolicy;

TEST(BusArbiter, RejectsBadConfiguration)
{
    EXPECT_THROW(BusArbiter(BusPolicy::kFixedPriority, 0, 10, 2),
                 std::invalid_argument);
    EXPECT_THROW(BusArbiter(BusPolicy::kFixedPriority, 2, 0, 2),
                 std::invalid_argument);
    EXPECT_THROW(BusArbiter(BusPolicy::kFixedPriority, 2, 10, 0),
                 std::invalid_argument);
}

TEST(BusArbiter, PerfectServesImmediately)
{
    BusArbiter arbiter(BusPolicy::kPerfect, 2, 10, 2);
    EXPECT_EQ(arbiter.request(0, 5, 100), 110);
    EXPECT_EQ(arbiter.request(1, 7, 100), 110); // no contention
}

TEST(BusArbiter, FpIdleBusGrantsImmediately)
{
    BusArbiter arbiter(BusPolicy::kFixedPriority, 2, 10, 2);
    EXPECT_EQ(arbiter.request(0, 5, 0), 10);
}

TEST(BusArbiter, FpQueuesWhenBusyAndPicksHighestPriority)
{
    BusArbiter arbiter(BusPolicy::kFixedPriority, 3, 10, 2);
    ASSERT_EQ(arbiter.request(0, 9, 0), 10);
    EXPECT_EQ(arbiter.request(1, 5, 2), std::nullopt); // queued
    EXPECT_EQ(arbiter.request(2, 3, 4), std::nullopt); // queued, higher
    const auto grant = arbiter.complete(0, 10);
    ASSERT_TRUE(grant.has_value());
    EXPECT_EQ(grant->first, 2u); // priority 3 beats 5
    EXPECT_EQ(grant->second, 20);
    const auto grant2 = arbiter.complete(2, 20);
    ASSERT_TRUE(grant2.has_value());
    EXPECT_EQ(grant2->first, 1u);
}

TEST(BusArbiter, FpRejectsDoubleRequest)
{
    BusArbiter arbiter(BusPolicy::kFixedPriority, 2, 10, 2);
    ASSERT_EQ(arbiter.request(0, 1, 0), 10);
    ASSERT_EQ(arbiter.request(1, 2, 0), std::nullopt);
    EXPECT_THROW((void)arbiter.request(1, 2, 1), std::logic_error);
}

TEST(BusArbiter, RoundRobinHonorsSlotBudget)
{
    // slot_size = 2: core 0 gets two back-to-back grants while core 1
    // waits, then the turn passes.
    BusArbiter arbiter(BusPolicy::kRoundRobin, 2, 10, 2);
    ASSERT_EQ(arbiter.request(0, 1, 0), 10); // turn: core0, used 1
    ASSERT_EQ(arbiter.request(1, 1, 1), std::nullopt);
    // Core 0 finishes and immediately requests again.
    auto grant = arbiter.complete(0, 10);
    ASSERT_TRUE(grant.has_value());
    EXPECT_EQ(grant->first, 1u); // core0 has nothing pending -> turn passes
    // Queue another core-0 request while core 1 is in service.
    ASSERT_EQ(arbiter.request(0, 1, 12), std::nullopt);
    grant = arbiter.complete(1, 20);
    ASSERT_TRUE(grant.has_value());
    EXPECT_EQ(grant->first, 0u);
}

TEST(BusArbiter, RoundRobinConsecutiveGrantsCapThenRotate)
{
    BusArbiter arbiter(BusPolicy::kRoundRobin, 2, 10, 2);
    ASSERT_EQ(arbiter.request(0, 1, 0), 10); // used = 1
    ASSERT_EQ(arbiter.request(1, 1, 0), std::nullopt);
    // Re-request from core 0 before completion (not allowed: one
    // outstanding per core) — so emulate: complete, core0 requests again
    // instantly; it still has a slot left in its turn.
    auto grant = arbiter.complete(0, 10);
    ASSERT_TRUE(grant.has_value()); // grant goes to... core0 has nothing
    EXPECT_EQ(grant->first, 1u);
    (void)arbiter.complete(1, 20);

    // Fresh round: both queue while busy with core 0.
    ASSERT_EQ(arbiter.request(0, 1, 30), 40); // new turn for core 0, used 1
    ASSERT_EQ(arbiter.request(1, 1, 31), std::nullopt);
    grant = arbiter.complete(0, 40);
    ASSERT_TRUE(grant.has_value());
    ASSERT_EQ(arbiter.request(0, 1, 41), std::nullopt);
    // Core 0 already used 1 of 2; when core 1's access finishes the
    // pending core-0 request is served... rotation state decides; what we
    // require is that NOBODY starves:
    grant = arbiter.complete(grant->first, grant->second);
    ASSERT_TRUE(grant.has_value());
    EXPECT_EQ(grant->first, 0u);
}

TEST(BusArbiter, TdmaTokenRotation)
{
    // 2 cores, slot 1, d_mem 10: core 0 owns [0,10), [20,30)...; core 1
    // owns [10,20), [30,40)...
    BusArbiter arbiter(BusPolicy::kTdma, 2, 10, 1);
    EXPECT_EQ(arbiter.request(0, 1, 0), 10);    // own token right now
    EXPECT_EQ(arbiter.request(1, 1, 0), 20);    // waits for [10,20)
    // Mid-token start is allowed:
    BusArbiter arbiter2(BusPolicy::kTdma, 2, 10, 1);
    EXPECT_EQ(arbiter2.request(0, 1, 5), 15);   // starts at 5 within token
    // Just after the token: wait for the next one.
    BusArbiter arbiter3(BusPolicy::kTdma, 2, 10, 1);
    EXPECT_EQ(arbiter3.request(0, 1, 10), 30);  // next own token at 20
}

TEST(BusArbiter, TdmaSlotSizeGroupsSlots)
{
    // slot_size 2: core 0 owns [0,20), core 1 [20,40), cycle 40.
    BusArbiter arbiter(BusPolicy::kTdma, 2, 10, 2);
    EXPECT_EQ(arbiter.request(1, 1, 0), 30);  // waits for 20
    EXPECT_EQ(arbiter.request(0, 1, 15), 25); // mid-token start
}

TEST(BusArbiter, TdmaIgnoresComplete)
{
    BusArbiter arbiter(BusPolicy::kTdma, 2, 10, 1);
    (void)arbiter.request(0, 1, 0);
    EXPECT_EQ(arbiter.complete(0, 10), std::nullopt);
}

TEST(BusArbiter, WorstCaseFpWaitIsBoundedByAllOthers)
{
    // 4 cores: core 3's request waits for the in-flight access plus all
    // higher-priority pending ones: <= 4 * d_mem total.
    BusArbiter arbiter(BusPolicy::kFixedPriority, 4, 10, 1);
    ASSERT_EQ(arbiter.request(0, 9, 0), 10);
    ASSERT_EQ(arbiter.request(1, 1, 1), std::nullopt);
    ASSERT_EQ(arbiter.request(2, 2, 2), std::nullopt);
    ASSERT_EQ(arbiter.request(3, 8, 3), std::nullopt);
    util::Cycles t = 10;
    std::size_t served_core = 0;
    for (int i = 0; i < 3; ++i) {
        const auto grant = arbiter.complete(served_core, t);
        ASSERT_TRUE(grant.has_value());
        served_core = grant->first;
        t = grant->second;
    }
    EXPECT_EQ(served_core, 3u); // served last
    EXPECT_LE(t, 40);
}

} // namespace
} // namespace cpa::sim
