file(REMOVE_RECURSE
  "CMakeFiles/wcet_extraction.dir/wcet_extraction.cpp.o"
  "CMakeFiles/wcet_extraction.dir/wcet_extraction.cpp.o.d"
  "wcet_extraction"
  "wcet_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcet_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
