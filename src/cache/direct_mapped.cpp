#include "cache/direct_mapped.hpp"

namespace cpa::cache {

DirectMappedCache::DirectMappedCache(CacheGeometry geometry)
    : geometry_(geometry), lines_(geometry.sets)
{
    if (geometry_.sets == 0) {
        throw std::invalid_argument("DirectMappedCache: zero sets");
    }
}

bool DirectMappedCache::access(std::size_t block_address)
{
    std::optional<std::size_t>& line = lines_[geometry_.set_of(block_address)];
    if (line == block_address) {
        return true;
    }
    line = block_address;
    return false;
}

bool DirectMappedCache::contains(std::size_t block_address) const
{
    return lines_[geometry_.set_of(block_address)] == block_address;
}

void DirectMappedCache::preload(std::size_t block_address)
{
    lines_[geometry_.set_of(block_address)] = block_address;
}

void DirectMappedCache::flush()
{
    for (auto& line : lines_) {
        line.reset();
    }
}

void DirectMappedCache::invalidate_set(std::size_t set_index)
{
    if (set_index >= lines_.size()) {
        throw std::out_of_range("DirectMappedCache::invalidate_set");
    }
    lines_[set_index].reset();
}

std::size_t DirectMappedCache::occupied() const
{
    std::size_t count = 0;
    for (const auto& line : lines_) {
        if (line.has_value()) {
            ++count;
        }
    }
    return count;
}

} // namespace cpa::cache
