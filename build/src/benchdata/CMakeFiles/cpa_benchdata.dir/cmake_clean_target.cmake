file(REMOVE_RECURSE
  "libcpa_benchdata.a"
)
