// Differential harness for the WCRT engine seam: WcrtEngine::kIncremental
// (the breakpoint-driven solver of wcrt_incremental.cpp) must be EXACT
// against WcrtEngine::kReference (the paper-shaped loop kept verbatim in
// wcrt.cpp) on randomized task sets.
//
// Which fields must match exactly: ALL of them. The incremental engine
// computes the identical rhs(r) at every iterate, so not just the verdict
// and the response vector but also outer_iterations, inner_iterations,
// failed_task, stop_reason, and inner_budget_exhausted are byte-identical
// by construction — and the suite pins that. The iteration-count equality
// is what keeps the metric goldens (tests/cli/golden/*_metrics.txt) and
// the bench-trajectory baseline valid regardless of the default engine:
// wcrt.inner_iterations, bas.calls, tables.gamma_lookups, and the bat.*
// breakdown are all per-iteration counters.
#include "analysis/wcrt.hpp"

#include "benchdata/generator.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace cpa::analysis {
namespace {

tasks::TaskSet random_set(std::uint64_t seed, double utilization,
                          double jitter_fraction)
{
    util::Rng rng(seed);
    benchdata::GenerationConfig gen;
    gen.num_cores = 3;
    gen.tasks_per_core = 4;
    gen.cache_sets = 128;
    gen.per_core_utilization = utilization;
    gen.jitter_fraction = jitter_fraction;
    static const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 128);
    return benchdata::generate_task_set(rng, gen, pool);
}

PlatformConfig test_platform()
{
    PlatformConfig platform;
    platform.num_cores = 3;
    platform.cache_sets = 128;
    platform.d_mem = Cycles{10};
    platform.slot_size = 2;
    return platform;
}

void expect_identical(const WcrtResult& reference,
                      const WcrtResult& incremental,
                      const std::string& context)
{
    EXPECT_EQ(reference.schedulable, incremental.schedulable) << context;
    EXPECT_EQ(reference.response, incremental.response) << context;
    EXPECT_EQ(reference.outer_iterations, incremental.outer_iterations)
        << context;
    EXPECT_EQ(reference.inner_iterations, incremental.inner_iterations)
        << context;
    EXPECT_EQ(reference.failed_task, incremental.failed_task) << context;
    EXPECT_EQ(reference.stop_reason, incremental.stop_reason) << context;
    EXPECT_EQ(reference.inner_budget_exhausted,
              incremental.inner_budget_exhausted)
        << context;
}

// Runs both engines on `seeds` random sets per persistence setting and
// compares every WcrtResult field. Utilization cycles through 0.3-0.9 so
// both schedulable and deadline-missing sets are exercised.
void run_differential(BusPolicy policy, std::uint64_t seeds,
                      double jitter_fraction, CproMethod cpro)
{
    const PlatformConfig platform = test_platform();
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        const double utilization = 0.3 + 0.1 * static_cast<double>(seed % 7);
        const tasks::TaskSet ts =
            random_set(seed, utilization, jitter_fraction);
        const InterferenceTables tables(ts, CrpdMethod::kEcbUnion);
        for (const bool persistence : {true, false}) {
            AnalysisConfig config;
            config.policy = policy;
            config.persistence_aware = persistence;
            config.cpro = cpro;

            config.wcrt_engine = WcrtEngine::kReference;
            const WcrtResult reference =
                compute_wcrt(ts, platform, config, tables);
            config.wcrt_engine = WcrtEngine::kIncremental;
            const WcrtResult incremental =
                compute_wcrt(ts, platform, config, tables);

            expect_identical(reference, incremental,
                             "policy=" + to_string(policy) +
                                 " seed=" + std::to_string(seed) +
                                 " persistence=" +
                                 (persistence ? "on" : "off"));
            if (::testing::Test::HasFailure()) {
                return; // one counterexample is enough to debug
            }
        }
    }
}

TEST(WcrtEngineDifferential, FixedPriorityMatchesReference)
{
    run_differential(BusPolicy::kFixedPriority, 200, 0.0,
                     CproMethod::kUnion);
}

TEST(WcrtEngineDifferential, RoundRobinMatchesReference)
{
    run_differential(BusPolicy::kRoundRobin, 200, 0.0, CproMethod::kUnion);
}

TEST(WcrtEngineDifferential, TdmaMatchesReference)
{
    run_differential(BusPolicy::kTdma, 200, 0.0, CproMethod::kUnion);
}

TEST(WcrtEngineDifferential, PerfectBusMatchesReference)
{
    run_differential(BusPolicy::kPerfect, 50, 0.0, CproMethod::kUnion);
}

// Release jitter shifts every breakpoint family (⌈(t+J)/T⌉ steps early,
// Eq. (6) windows stretch), so the cursor bookkeeping gets its own sweep.
TEST(WcrtEngineDifferential, JitterMatchesReference)
{
    run_differential(BusPolicy::kFixedPriority, 60, 0.25,
                     CproMethod::kUnion);
    run_differential(BusPolicy::kRoundRobin, 60, 0.25, CproMethod::kUnion);
    run_differential(BusPolicy::kTdma, 60, 0.25, CproMethod::kUnion);
}

// CproMethod::kJobBound couples each cached ρ̂ term to the job counts of
// every same-core evictor — the hardest invalidation path of the
// incremental engine.
TEST(WcrtEngineDifferential, JobBoundCproMatchesReference)
{
    run_differential(BusPolicy::kFixedPriority, 60, 0.0,
                     CproMethod::kJobBound);
    run_differential(BusPolicy::kRoundRobin, 60, 0.0,
                     CproMethod::kJobBound);
    run_differential(BusPolicy::kFixedPriority, 40, 0.25,
                     CproMethod::kJobBound);
}

#if CPA_OBS_ENABLED
// The two engines must emit the exact same deterministic metric profile
// (counters and non-"_ns" histograms): this is what keeps the pinned CLI
// metric goldens and bench/history/baseline-small.json engine-independent.
TEST(WcrtEngineDifferential, MetricProfileIdenticalAcrossEngines)
{
    const PlatformConfig platform = test_platform();
    auto run_with_engine = [&](WcrtEngine engine) {
        obs::MetricsRegistry::global().reset();
        obs::set_metrics_enabled(true);
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
            const tasks::TaskSet ts = random_set(seed, 0.5, 0.0);
            const InterferenceTables tables(ts, CrpdMethod::kEcbUnion);
            for (const BusPolicy policy :
                 {BusPolicy::kFixedPriority, BusPolicy::kRoundRobin,
                  BusPolicy::kTdma, BusPolicy::kPerfect}) {
                AnalysisConfig config;
                config.policy = policy;
                config.wcrt_engine = engine;
                (void)compute_wcrt(ts, platform, config, tables);
            }
        }
        obs::MetricsSnapshot snap =
            obs::MetricsRegistry::global().snapshot();
        obs::set_metrics_enabled(false);
        obs::MetricsRegistry::global().reset();
        return snap;
    };

    const obs::MetricsSnapshot reference =
        run_with_engine(WcrtEngine::kReference);
    const obs::MetricsSnapshot incremental =
        run_with_engine(WcrtEngine::kIncremental);

    EXPECT_EQ(reference.counters, incremental.counters);
    ASSERT_EQ(reference.histograms.size(), incremental.histograms.size());
    for (const auto& [name, stat] : reference.histograms) {
        if (name.ends_with("_ns")) {
            continue; // wall-clock histograms are inherently nondeterministic
        }
        ASSERT_TRUE(incremental.histograms.contains(name)) << name;
        const obs::HistogramStat& other = incremental.histograms.at(name);
        EXPECT_EQ(stat.count, other.count) << name;
        EXPECT_EQ(stat.sum, other.sum) << name;
        EXPECT_EQ(stat.min, other.min) << name;
        EXPECT_EQ(stat.max, other.max) << name;
    }
    // Timers differ in total_ns but must agree on call counts.
    ASSERT_EQ(reference.timers.size(), incremental.timers.size());
    for (const auto& [name, stat] : reference.timers) {
        ASSERT_TRUE(incremental.timers.contains(name)) << name;
        EXPECT_EQ(stat.count, incremental.timers.at(name).count) << name;
    }
}
#endif // CPA_OBS_ENABLED

} // namespace
} // namespace cpa::analysis
