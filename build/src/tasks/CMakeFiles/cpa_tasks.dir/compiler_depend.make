# Empty compiler generated dependencies file for cpa_tasks.
# This may be replaced when dependencies are built.
