# Empty dependencies file for bus_bounds_test.
# This may be replaced when dependencies are built.
