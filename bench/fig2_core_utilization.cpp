// Reproduces Fig. 2 (a: FP bus, b: RR bus, c: TDMA bus): number of task sets
// deemed schedulable vs. per-core utilization, with and without cache
// persistence, plus the perfect-bus upper bound.
//
// Expected shape (paper): persistence-aware curves dominate their
// counterparts (up to +70 pp for FP, +65 pp RR, +50 pp TDMA); FP > RR >
// TDMA; perfect bus dominates everything.
#include "common.hpp"

#include <iostream>

int main()
{
    using namespace cpa;
    bench::BenchReport bench_report("fig2_core_utilization");

    const std::size_t task_sets = experiments::task_sets_from_env(500);
    bench_report.section("sweep");
    const auto sweep = experiments::run_utilization_sweep(
        bench::default_generation(), bench::default_platform(),
        experiments::standard_variants(), bench::fig2_sweep(task_sets));

    bench_report.section("report");
    bench::print_sweep(
        "Fig. 2: schedulable task sets vs per-core utilization "
        "(4 cores, 8 tasks/core, 256 sets, d_mem=5us, s=2)",
        sweep);

    // Headline numbers: the largest gap (in percentage points of task sets)
    // between each persistence-aware analysis and its counterpart.
    const auto gap = [&](std::size_t with, std::size_t without) {
        double best = 0.0;
        for (const auto& point : sweep.points) {
            const double delta =
                100.0 *
                (static_cast<double>(point.schedulable[with]) -
                 static_cast<double>(point.schedulable[without])) /
                static_cast<double>(sweep.task_sets_per_point);
            best = std::max(best, delta);
        }
        return best;
    };
    std::cout << "Peak persistence gain (percentage points of task sets):\n"
              << "  FP:   " << util::TextTable::num(gap(0, 1), 1)
              << " (paper: up to 70)\n"
              << "  RR:   " << util::TextTable::num(gap(2, 3), 1)
              << " (paper: up to 65)\n"
              << "  TDMA: " << util::TextTable::num(gap(4, 5), 1)
              << " (paper: up to 50)\n";
    return 0;
}
