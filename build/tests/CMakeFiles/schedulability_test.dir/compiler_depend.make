# Empty compiler generated dependencies file for schedulability_test.
# This may be replaced when dependencies are built.
