// Static (abstract-interpretation) extraction for programs WITH control
// flow. Trace simulation (extract.hpp) is exact but needs a single path;
// real WCET tools like the paper's Heptane analyze all paths at once. This
// module implements the classic must-cache analysis for a direct-mapped
// cache over the structured program IR:
//
//  * abstract state: per cache set either "definitely holds block b" or
//    unknown (⊥-free must domain; a reference is a guaranteed hit iff the
//    state says its block is resident, otherwise it is counted as a miss);
//  * alternatives: each branch is analyzed from the incoming state, the
//    miss bound takes the worst branch, and the outgoing state is the meet
//    (per set: keep b only if every branch ends with b);
//  * loops: the first iteration is analyzed from the incoming state, then
//    the loop-invariant entry state is computed by meet-iteration to a
//    fixpoint; iterations 2..n are each charged the miss count of one body
//    pass from the invariant state (the state with the least knowledge, so
//    the per-iteration bound is maximal — sound for every iteration).
//
// Guarantees (tested): for every branch resolution of the program, the
// concrete trace miss counts never exceed the bounds computed here, and on
// alternative-free programs the bounds coincide with the exact trace
// extraction for all programs in the synthetic suite.
#pragma once

#include "cache/geometry.hpp"
#include "program/program.hpp"
#include "util/set_mask.hpp"
#include "util/units.hpp"

#include <cstdint>
#include <string>

namespace cpa::program {

struct AbstractExtraction {
    std::string name;
    util::Cycles pd;              // longest-path fetch count * fetch cost
    util::AccessCount md;         // upper bound on cold-cache misses
    util::AccessCount md_residual; // upper bound with PCBs pre-loaded
    util::SetMask ecb;            // sets touched on any path
    util::SetMask ucb;            // sets of blocks that may be reused
    util::SetMask pcb;            // exact (layout property, path-independent)
};

// Analyzes `program` for a direct-mapped cache. Throws std::invalid_argument
// if geometry.ways != 1 (the must domain implemented here is direct-mapped;
// use trace extraction for associative caches).
[[nodiscard]] AbstractExtraction
analyze_program(const Program& program, const cache::CacheGeometry& geometry);

} // namespace cpa::program
