#include "obs/parallel.hpp"

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

#include <chrono>
#include <vector>

namespace cpa::obs {

void run_indexed_trials(util::ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& body)
{
    if (!metrics_enabled()) {
        pool.parallel_for_indexed(count, [&](std::size_t index) {
            ScopedSpan span("trial", "index",
                            static_cast<std::int64_t>(index));
            body(index);
        });
        return;
    }
    // One buffer per trial (not per thread): the merge order must be the
    // trial order, which a per-thread buffer could not reconstruct. Buffers
    // stage even on a 1-job pool so the serial and parallel paths execute
    // the exact same metric machinery.
    std::vector<MetricsBuffer> buffers(count);
    pool.parallel_for_indexed(count, [&](std::size_t index) {
        ScopedSpan span("trial", "index", static_cast<std::int64_t>(index));
        ScopedMetricsBuffer scope(buffers[index]);
        const auto start = std::chrono::steady_clock::now();
        body(index);
        // Per-trial wall time, staged in the trial's buffer so the global
        // histogram is built in trial-index order like everything else.
        buffers[index].record_histogram(
            "trial.wall_ns",
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
    });
    for (MetricsBuffer& buffer : buffers) {
        buffer.flush_to_global();
    }
}

} // namespace cpa::obs
