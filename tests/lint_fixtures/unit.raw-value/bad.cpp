// Fixture: raw Id::value() escape — the subscript loses its tag.
#include "util/units.hpp"

#include <cstddef>

std::size_t leak_index(cpa::util::TaskId id)
{
    return id.value();
}
