// Fixture: Rng::fork() inside a parallel body is order-dependent — the
// child stream depends on how many forks happened before it.
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

#include <cstddef>
#include <vector>

void trial_streams(cpa::util::ThreadPool& pool, cpa::util::Rng& rng,
                   std::vector<double>& slot)
{
    pool.parallel_for_indexed(slot.size(), [&](std::size_t i) {
        cpa::util::Rng local = rng.fork();
        slot[i] = local.uniform_real();
    });
}
