// Command dispatch of the `cpa` tool. Kept out of main() so the tests can
// drive the tool in-process with captured streams.
//
// Commands (the usage text and `cpa help <command>` are generated from the
// option registry in cli/options.hpp, so run `cpa help` for the full list):
//
//   cpa analyze <file>   schedulability analysis of a task-set file
//   cpa simulate <file>  discrete-event simulation
//   cpa generate         emit a random task-set file
//   cpa sweep            schedulability-vs-utilization sweep
//   cpa batch            NDJSON request service on a warm analysis::Session
//   cpa check            invariant catalog on random task sets
//   cpa verify           interval prover over a parameter box
//   cpa version          build provenance
//   cpa help [command]   generated usage / option tables
//
// Exit-code convention (cli::ExitCode, uniform across commands):
//
//   code | meaning
//   -----+---------------------------------------------------------------
//     0  | success; for analysis commands: everything schedulable
//     1  | usage error, unreadable input, or other failure to run
//     2  | analysis completed and something was NOT schedulable
//        | (analyze: some policy; simulate: deadline miss observed;
//        |  batch: >=1 request returned schedulable=false)
//     3  | violation: `check --fail-on-violation` found an invariant
//        | violation, `verify --fail-on` refuted/left open an obligation,
//        |  or `batch` emitted >=1 structured error record
//
// Batch precedence: 3 (any error record) beats 2 (any unschedulable).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cpa::cli {

// The uniform process exit codes (see the table above). Scoped enum on
// purpose: command implementations return ExitCode and only run_cli's
// caller converts to int.
enum class ExitCode : int {
    kOk = 0,            // success / schedulable
    kUsage = 1,         // bad invocation or failure to run
    kUnschedulable = 2, // analysis ran; result is "not schedulable"
    kViolation = 3,     // invariant violation / refutation / error records
};

[[nodiscard]] constexpr int to_exit_status(ExitCode code)
{
    return static_cast<int>(code);
}

// Runs one invocation; returns the process exit status per the table above.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

} // namespace cpa::cli
