# Empty dependencies file for set_mask_test.
# This may be replaced when dependencies are built.
