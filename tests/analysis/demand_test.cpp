#include "analysis/demand.hpp"

#include "helpers.hpp"

#include <gtest/gtest.h>

namespace cpa::analysis {
namespace {

using namespace util::literals;

tasks::Task demo_task(std::int64_t md, std::int64_t mdr,
                      std::vector<std::size_t> pcb)
{
    tasks::Task task;
    task.md = util::AccessCount{md};
    task.md_residual = util::AccessCount{mdr};
    task.pcb = util::SetMask::from_indices(64, std::move(pcb));
    return task;
}

TEST(MdHat, ZeroJobsZeroDemand)
{
    EXPECT_EQ(md_hat(demo_task(6, 1, {1, 2, 3, 4, 5}), 0), 0_acc);
    EXPECT_EQ(md_hat(demo_task(6, 1, {1, 2, 3, 4, 5}), -3), 0_acc);
}

TEST(MdHat, SingleJobIsWorstCaseDemand)
{
    // min(1*6, 1*1 + 5) = 6.
    EXPECT_EQ(md_hat(demo_task(6, 1, {1, 2, 3, 4, 5}), 1), 6_acc);
}

TEST(MdHat, MatchesFig1ThreeJobsOfTau1)
{
    // The paper: three jobs of τ1 access memory 6 + 1 + 1 = 8 times.
    EXPECT_EQ(md_hat(demo_task(6, 1, {1, 2, 3, 4, 5}), 3), 8_acc);
}

TEST(MdHat, MatchesFig1FourJobsOfTau3)
{
    // MD_3 + 3*MDr_3 = 9 in the paper's other-core example.
    EXPECT_EQ(md_hat(demo_task(6, 1, {1, 2, 3, 4, 5}), 4), 9_acc);
}

TEST(MdHat, NoPersistenceReducesToLinearDemand)
{
    // MDr == MD and PCB empty -> n*MD exactly.
    EXPECT_EQ(md_hat(demo_task(7, 7, {}), 5), 35_acc);
}

TEST(MdHat, NeverExceedsEitherBound)
{
    for (std::int64_t n = 0; n <= 20; ++n) {
        const tasks::Task task = demo_task(9, 2, {0, 1, 2});
        const util::AccessCount value = md_hat(task, n);
        EXPECT_LE(value, n * task.md);
        EXPECT_LE(value, n * task.md_residual + 3_acc);
    }
}

TEST(MdHat, MonotoneInJobCount)
{
    const tasks::Task task = demo_task(9, 2, {0, 1, 2});
    util::AccessCount previous{0};
    for (std::int64_t n = 0; n <= 50; ++n) {
        const util::AccessCount value = md_hat(task, n);
        EXPECT_GE(value, previous);
        previous = value;
    }
}

// Parameterized sweep: the min() must switch from the linear bound to the
// residual bound exactly when n*MD >= n*MDr + |PCB|.
class MdHatCrossover
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t,
                                                 std::int64_t>> {};

TEST_P(MdHatCrossover, PicksTheSmallerBound)
{
    const auto [md, mdr, pcb_count] = GetParam();
    std::vector<std::size_t> pcb;
    for (std::int64_t i = 0; i < pcb_count; ++i) {
        pcb.push_back(static_cast<std::size_t>(i));
    }
    const tasks::Task task = demo_task(md, mdr, pcb);
    for (std::int64_t n = 1; n <= 10; ++n) {
        EXPECT_EQ(md_hat(task, n),
                  util::AccessCount{std::min(n * md, n * mdr + pcb_count)})
            << "md=" << md << " mdr=" << mdr << " pcb=" << pcb_count
            << " n=" << n;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MdHatCrossover,
    ::testing::Values(std::tuple{6, 1, 5}, std::tuple{6, 0, 6},
                      std::tuple{10, 9, 2}, std::tuple{10, 0, 40},
                      std::tuple{1, 0, 1}, std::tuple{3, 3, 0}));

} // namespace
} // namespace cpa::analysis
