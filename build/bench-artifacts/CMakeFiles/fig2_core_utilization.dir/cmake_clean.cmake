file(REMOVE_RECURSE
  "../bench/fig2_core_utilization"
  "../bench/fig2_core_utilization.pdb"
  "CMakeFiles/fig2_core_utilization.dir/fig2_core_utilization.cpp.o"
  "CMakeFiles/fig2_core_utilization.dir/fig2_core_utilization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_core_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
