file(REMOVE_RECURSE
  "CMakeFiles/cpa_tasks.dir/partition.cpp.o"
  "CMakeFiles/cpa_tasks.dir/partition.cpp.o.d"
  "CMakeFiles/cpa_tasks.dir/task.cpp.o"
  "CMakeFiles/cpa_tasks.dir/task.cpp.o.d"
  "libcpa_tasks.a"
  "libcpa_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
