// Ablation (not in the paper): deadline-monotonic vs rate-monotonic priority
// assignment. On the paper's implicit-deadline recipe (D = T) the two
// coincide; with constrained deadlines (here D = 0.7 T) they differ and DM
// is the better heuristic. Both are run under the FP/RR/TDMA analyses with
// persistence enabled.
#include "common.hpp"

int main()
{
    using namespace cpa;
    bench::BenchReport bench_report("ablation_priority");

    const std::size_t task_sets = experiments::task_sets_from_env(80);
    const auto variants = experiments::standard_variants(false);

    for (const double ratio : {1.0, 0.7}) {
        for (const auto& [label, priority] :
             {std::pair{"DM", benchdata::PriorityAssignment::kDeadlineMonotonic},
              std::pair{"RM", benchdata::PriorityAssignment::kRateMonotonic}}) {
            auto generation = bench::default_generation();
            generation.priority = priority;
            generation.deadline_ratio = ratio;
            const auto sweep = experiments::run_utilization_sweep(
                generation, bench::default_platform(), variants,
                bench::fig2_sweep(task_sets));
            bench::print_sweep("Ablation: priority=" + std::string(label) +
                                   ", D/T=" + util::TextTable::num(ratio, 1),
                               sweep);
        }
    }
    return 0;
}
