// End-to-end reproduction of the worked example of the paper's Fig. 1:
// τ1, τ2 on core π_x, τ3 on core π_y, RR bus with slot size s = 1.
// Every number below is printed in Section IV of the paper.
#include "analysis/bus_bounds.hpp"
#include "analysis/demand.hpp"
#include "analysis/interference.hpp"

#include "helpers.hpp"

#include <gtest/gtest.h>

namespace cpa::analysis {
namespace {

using namespace util::literals;

class Fig1Example : public ::testing::Test {
protected:
    Fig1Example()
        : ts_(cpa::testing::fig1_task_set(/*t1_period=*/10,
                                          /*t2_period=*/60,
                                          /*t3_period=*/6)),
          tables_(ts_, CrpdMethod::kEcbUnion)
    {
        platform_.num_cores = 2;
        platform_.cache_sets = 16;
        platform_.d_mem = 1_cy;
        platform_.slot_size = 1; // the example uses s = 1
        // τ3's response-time estimate: chosen so that exactly four jobs of
        // τ3 fit in the window with no carry-out, matching the schedule the
        // paper draws (N_{3,3}(R_2) = 4, Eq. (13)).
        response_ = {10_cy, 60_cy, 5_cy};
    }

    [[nodiscard]] BusContentionAnalysis bounds(bool persistence) const
    {
        AnalysisConfig config;
        config.policy = BusPolicy::kRoundRobin;
        config.persistence_aware = persistence;
        return BusContentionAnalysis(ts_, platform_, config, tables_);
    }

    static constexpr Cycles kWindow{25}; // E_1(R_2) = 3 jobs of τ1

    tasks::TaskSet ts_;
    PlatformConfig platform_;
    InterferenceTables tables_;
    std::vector<Cycles> response_;
};

TEST_F(Fig1Example, CrpdGammaIsTwo)
{
    // γ_{2,1,x} = |UCB_2 ∩ ECB_1| = |{5,6}| = 2 (Eq. (2)).
    EXPECT_EQ(tables_.gamma(1, 0), 2_acc);
}

TEST_F(Fig1Example, ThreeJobsOfTau1AccessMemoryEightTimes)
{
    // "MD_1 + MD_1^r + MD_1^r = 6 + 1 + 1 = 8, much lower than 3*MD_1 = 18".
    EXPECT_EQ(md_hat(ts_[0], 3), 8_acc);
}

TEST_F(Fig1Example, CproOfTau1DuringTau2ResponseIsFour)
{
    // ρ̂_{1,2,x}(3) = 2 * |PCB_1 ∩ ECB_2| = 2 * 2 = 4 (Eq. (14)).
    EXPECT_EQ(tables_.rho_hat(0, 1, 3), 4_acc);
}

TEST_F(Fig1Example, BasWithoutPersistenceIs32)
{
    // Eq. (12): BAS_2^x(R_2) = 8 + 3*(6+2) = 32.
    EXPECT_EQ(bounds(false).bas(1, kWindow), 32_acc);
}

TEST_F(Fig1Example, BasWithPersistenceIs26)
{
    // Eq. (15): MD_2 + MD_1 + 2 MD_1^r + ρ̂ + 3γ = 8 + 8 + 4 + 6 = 26.
    EXPECT_EQ(bounds(true).bas(1, kWindow), 26_acc);
}

TEST_F(Fig1Example, BaoWithoutPersistenceIs24)
{
    // Eq. (13): BAO_3^y(R_2) = N_{3,3}(R_2) * MD_3 = 4 * 6 = 24.
    EXPECT_EQ(bounds(false).bao(1, 2, kWindow, response_), 24_acc);
}

TEST_F(Fig1Example, BaoWithPersistenceIsNine)
{
    // "MD_3 + 3*MD_3^r = 6 + 3 = 9, much lower than BAO_3^y(R_2) = 24".
    EXPECT_EQ(bounds(true).bao(1, 2, kWindow, response_), 9_acc);
}

TEST_F(Fig1Example, RoundRobinTotalsCombinePerEq11)
{
    // Eq. (11): BAT_2 = BAS_2 + min(BAO_3; BAS_2), no +1 because τ2 is the
    // lowest-priority task on its core.
    EXPECT_EQ(bounds(false).bat(1, kWindow, response_), util::AccessCount{32 + 24});
    EXPECT_EQ(bounds(true).bat(1, kWindow, response_), util::AccessCount{26 + 9});
}

TEST_F(Fig1Example, PersistenceSavesSixAccessesSameCore)
{
    // The paper highlights 26 vs 32: six same-core accesses saved.
    const util::AccessCount saved =
        bounds(false).bas(1, kWindow) - bounds(true).bas(1, kWindow);
    EXPECT_EQ(saved, 6_acc);
}

} // namespace
} // namespace cpa::analysis
