#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace cpa::obs {

void write_json_escaped(std::ostream& out, std::string_view text)
{
    for (const char ch : text) {
        switch (ch) {
        case '"':
            out << "\\\"";
            break;
        case '\\':
            out << "\\\\";
            break;
        case '\n':
            out << "\\n";
            break;
        case '\r':
            out << "\\r";
            break;
        case '\t':
            out << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out << buffer;
            } else {
                out << ch;
            }
        }
    }
}

std::string json_number(double value)
{
    if (!std::isfinite(value)) {
        return "0";
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    return buffer;
}

JsonValue& JsonValue::set(std::string_view key, JsonValue value)
{
    if (kind_ != Kind::kObject) {
        throw std::logic_error("JsonValue::set on a non-object");
    }
    for (auto& [existing_key, existing_value] : members_) {
        if (existing_key == key) {
            existing_value = std::move(value);
            return existing_value;
        }
    }
    members_.emplace_back(std::string(key), std::move(value));
    return members_.back().second;
}

JsonValue& JsonValue::push(JsonValue value)
{
    if (kind_ != Kind::kArray) {
        throw std::logic_error("JsonValue::push on a non-array");
    }
    elements_.push_back(std::move(value));
    return elements_.back();
}

void JsonValue::write(std::ostream& out) const
{
    switch (kind_) {
    case Kind::kNull:
        out << "null";
        break;
    case Kind::kBool:
        out << (bool_ ? "true" : "false");
        break;
    case Kind::kInt:
        out << int_;
        break;
    case Kind::kDouble:
        out << json_number(double_);
        break;
    case Kind::kString:
        out << '"';
        write_json_escaped(out, string_);
        out << '"';
        break;
    case Kind::kObject: {
        out << '{';
        bool first = true;
        for (const auto& [key, value] : members_) {
            if (!first) {
                out << ',';
            }
            first = false;
            out << '"';
            write_json_escaped(out, key);
            out << "\":";
            value.write(out);
        }
        out << '}';
        break;
    }
    case Kind::kArray: {
        out << '[';
        bool first = true;
        for (const auto& element : elements_) {
            if (!first) {
                out << ',';
            }
            first = false;
            element.write(out);
        }
        out << ']';
        break;
    }
    }
}

std::string JsonValue::to_string() const
{
    std::ostringstream out;
    write(out);
    return out.str();
}

} // namespace cpa::obs
