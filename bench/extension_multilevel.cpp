// Extension bench (the paper's future work): schedulability with a shared
// L2 behind the private L1s, for several L2 sizes, against the paper's
// single-level analysis. The L2 trades a per-request lookup latency d_l2
// for L2-persistent blocks that stop consuming the memory bus at all.
//
// Expected shape: a small shared L2 (heavily contended by 32 tasks) barely
// helps — or even hurts, through the added lookup latency — while a large
// one substantially extends the persistence benefit.
#include "analysis/multilevel.hpp"
#include "analysis/schedulability.hpp"
#include "benchdata/generator.hpp"
#include "obs/parallel.hpp"
#include "common.hpp"

int main()
{
    using namespace cpa;
    bench::BenchReport bench_report("extension_multilevel");
    util::ThreadPool threads(bench_report.jobs());

    const std::size_t task_sets = experiments::task_sets_from_env(100);
    const auto platform = bench::default_platform();
    const auto generation = bench::default_generation();
    const auto pool = benchdata::derive_all(
        benchdata::full_benchmark_table(), generation.cache_sets);

    analysis::AnalysisConfig config;
    config.policy = analysis::BusPolicy::kFixedPriority;
    config.persistence_aware = true;

    const std::vector<std::size_t> l2_sizes = {512, 1024, 2048, 4096};

    std::cout << "== Extension: shared L2 vs single-level analysis "
                 "(FP bus, persistence aware, d_l2 = 1 us) ==\n"
                 "(task sets per point: "
              << task_sets << ")\n";
    std::vector<std::string> header{"U/core", "L1-only"};
    for (const std::size_t sets : l2_sizes) {
        header.push_back("L2/" + std::to_string(sets));
    }
    header.push_back("idealL2/4096"); // d_l2 = 0: pure persistence effect
    util::TextTable table(header);

    analysis::L2Config l2;
    l2.d_l2 = util::cycles_from_microseconds(util::Microseconds{1});

    for (double u = 0.2; u <= 0.9 + 1e-9; u += 0.1) {
        benchdata::GenerationConfig gen = generation;
        gen.per_core_utilization = u;

        // One verdict row per trial (seeded from the trial index — the same
        // draws for every utilization column as before), reduced in index
        // order after the parallel region.
        struct TrialOutcome {
            std::uint8_t single = 0;
            std::uint8_t ideal = 0;
            std::vector<std::uint8_t> multi;
        };
        std::vector<TrialOutcome> outcomes(task_sets);

        obs::run_indexed_trials(threads, task_sets, [&](std::size_t n) {
            TrialOutcome& outcome = outcomes[n];
            outcome.multi.assign(l2_sizes.size(), 0);
            util::Rng child(util::seed_for(77777, n));
            const tasks::TaskSet ts =
                benchdata::generate_task_set(child, gen, pool);
            const analysis::InterferenceTables tables(
                ts, analysis::CrpdMethod::kEcbUnion);
            outcome.single =
                analysis::is_schedulable(ts, platform, config, tables) ? 1u
                                                                       : 0u;
            for (std::size_t s = 0; s < l2_sizes.size(); ++s) {
                util::Rng placement(n);
                const auto footprints = benchdata::attach_l2_footprints(
                    placement, ts, benchdata::full_benchmark_table(),
                    l2_sizes[s]);
                analysis::L2Config sized = l2;
                sized.sets = l2_sizes[s];
                const analysis::L2InterferenceTables l2_tables(ts,
                                                               footprints);
                outcome.multi[s] = analysis::compute_wcrt_multilevel(
                                       ts, platform, config, sized,
                                       footprints, tables, l2_tables)
                                           .schedulable
                                       ? 1u
                                       : 0u;
                if (s + 1 == l2_sizes.size()) {
                    analysis::L2Config free_lookup = sized;
                    free_lookup.d_l2 = util::Cycles{0};
                    outcome.ideal = analysis::compute_wcrt_multilevel(
                                        ts, platform, config, free_lookup,
                                        footprints, tables, l2_tables)
                                            .schedulable
                                        ? 1u
                                        : 0u;
                }
            }
        });

        std::size_t single = 0;
        std::size_t ideal = 0;
        std::vector<std::size_t> multi(l2_sizes.size(), 0);
        for (const TrialOutcome& outcome : outcomes) {
            single += outcome.single;
            ideal += outcome.ideal;
            for (std::size_t s = 0; s < l2_sizes.size(); ++s) {
                multi[s] += outcome.multi[s];
            }
        }

        std::vector<std::string> row{util::TextTable::num(u, 1),
                                     std::to_string(single)};
        for (const std::size_t count : multi) {
            row.push_back(std::to_string(count));
        }
        row.push_back(std::to_string(ideal));
        table.add_row(std::move(row));
    }
    table.print(std::cout);
    bench::maybe_write_csv("extension-multilevel", table);
    return 0;
}
