// Minimal JSON reader for the `cpa batch` NDJSON request codec.
//
// The obs::JsonValue tree is deliberately write-only (the repo ships no
// JSON dependency), so the one place that must *consume* JSON — batch
// request lines — gets this small recursive-descent parser. It accepts
// strict JSON (RFC 8259): objects, arrays, strings with the standard
// escapes (\uXXXX included, encoded as UTF-8), integers, doubles, bools,
// null. No comments, no trailing commas, no NaN/Infinity.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cpa::cli {

// Parsed JSON value. Numbers keep their integer identity when the text has
// no fraction/exponent and fits std::int64_t — batch request fields are
// cycle counts and must not round-trip through double.
class JsonReader {
public:
    enum class Kind : std::uint8_t {
        kNull,
        kBool,
        kInt,
        kDouble,
        kString,
        kObject,
        kArray,
    };

    [[nodiscard]] Kind kind() const { return kind_; }
    [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }

    // Typed accessors; return nullopt/nullptr on kind mismatch (callers
    // build their own field-aware error messages). as_double also accepts
    // kInt; as_int does NOT accept kDouble.
    [[nodiscard]] std::optional<bool> as_bool() const;
    [[nodiscard]] std::optional<std::int64_t> as_int() const;
    [[nodiscard]] std::optional<double> as_double() const;
    [[nodiscard]] const std::string* as_string() const;

    // Object access: nullptr when absent or when this is not an object.
    [[nodiscard]] const JsonReader* find(std::string_view key) const;
    // Keys in document order, for unknown-field rejection.
    [[nodiscard]] const std::vector<std::string>& keys() const
    {
        return keys_;
    }
    [[nodiscard]] const std::vector<JsonReader>& elements() const
    {
        return elements_;
    }

    // Parses exactly one JSON document; the whole input must be consumed
    // (trailing whitespace allowed). Throws std::runtime_error with a
    // byte-offset message on malformed input.
    [[nodiscard]] static JsonReader parse(std::string_view text);

private:
    friend class JsonParser; // the recursive-descent builder (json_reader.cpp)

    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    // Objects: parallel keys_/members_ keep document order; lookup is
    // linear (request lines have ~10 fields).
    std::vector<std::string> keys_;
    std::vector<JsonReader> members_;
    std::vector<JsonReader> elements_; // arrays
};

} // namespace cpa::cli
