file(REMOVE_RECURSE
  "CMakeFiles/cpa_analysis.dir/bus_bounds.cpp.o"
  "CMakeFiles/cpa_analysis.dir/bus_bounds.cpp.o.d"
  "CMakeFiles/cpa_analysis.dir/config.cpp.o"
  "CMakeFiles/cpa_analysis.dir/config.cpp.o.d"
  "CMakeFiles/cpa_analysis.dir/interference.cpp.o"
  "CMakeFiles/cpa_analysis.dir/interference.cpp.o.d"
  "CMakeFiles/cpa_analysis.dir/multilevel.cpp.o"
  "CMakeFiles/cpa_analysis.dir/multilevel.cpp.o.d"
  "CMakeFiles/cpa_analysis.dir/report.cpp.o"
  "CMakeFiles/cpa_analysis.dir/report.cpp.o.d"
  "CMakeFiles/cpa_analysis.dir/schedulability.cpp.o"
  "CMakeFiles/cpa_analysis.dir/schedulability.cpp.o.d"
  "CMakeFiles/cpa_analysis.dir/wcrt.cpp.o"
  "CMakeFiles/cpa_analysis.dir/wcrt.cpp.o.d"
  "libcpa_analysis.a"
  "libcpa_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
