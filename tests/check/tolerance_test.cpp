// Pins the shared tolerance seam (check/tolerance.hpp). The exact value is
// part of the checker/prover contract: both `cpa check` and `cpa verify`
// decide "violation" through these predicates, so a silent change would
// shift what every gate in the repo accepts.
#include "check/tolerance.hpp"

#include <gtest/gtest.h>

namespace cpa::check {
namespace {

TEST(Tolerance, SharedUtilizationToleranceIsPinned)
{
    // 1e-9: absorbs the few-ulp error of summed double divisions at a grid
    // endpoint without admitting any point a whole grid step away.
    EXPECT_DOUBLE_EQ(kUtilizationTolerance, 1e-9);
}

TEST(Tolerance, WithinAcceptsUlpNoiseRejectsRealExcess)
{
    EXPECT_TRUE(utilization_within(1.0, 1.0));
    EXPECT_TRUE(utilization_within(1.0 + 5e-10, 1.0)); // summed-ulp noise
    EXPECT_TRUE(utilization_within(0.999999999, 1.0));
    EXPECT_FALSE(utilization_within(1.0 + 2e-9, 1.0)); // beyond tolerance
    EXPECT_FALSE(utilization_within(1.01, 1.0));
}

TEST(Tolerance, ExceedsIsTheExactComplement)
{
    for (const double value : {0.5, 1.0, 1.0 + 5e-10, 1.0 + 2e-9, 2.0}) {
        EXPECT_EQ(utilization_exceeds(value, 1.0),
                  !utilization_within(value, 1.0));
    }
}

TEST(Tolerance, IntegerMarginsAreExact)
{
    // Catalog relations compare 64-bit integer quantities: tolerance zero.
    EXPECT_FALSE(margin_violates(0));
    EXPECT_FALSE(margin_violates(1));
    EXPECT_TRUE(margin_violates(-1));
}

} // namespace
} // namespace cpa::check
