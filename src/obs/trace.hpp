// Structured NDJSON tracing: one JSON object per line, tagged with a
// subsystem ("wcrt", "bus", "sweep", "sim", ...), a severity, an event name,
// and free-form typed fields.
//
// The global Tracer is a null sink by default; installing a sink (CLI
// --trace, tests) turns `enabled()` true for the selected subsystems. Call
// sites guard with CPA_TRACE_ENABLED(subsys) so event construction is never
// paid when nobody listens.
#pragma once

#include "obs/json.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace cpa::obs {

enum class Severity : std::uint8_t {
    kDebug,
    kInfo,
    kWarn,
    kError,
};

[[nodiscard]] std::string_view to_string(Severity severity);

// One trace record. Fields keep insertion order in the output line.
class TraceEvent {
public:
    TraceEvent(std::string_view subsystem, Severity severity,
               std::string_view event)
        : subsystem_(subsystem), severity_(severity), event_(event)
    {
    }

    TraceEvent& field(std::string_view key, std::int64_t value)
    {
        fields_.emplace_back(std::string(key), JsonValue(value));
        return *this;
    }
    TraceEvent& field(std::string_view key, std::size_t value)
    {
        return field(key, static_cast<std::int64_t>(value));
    }
    TraceEvent& field(std::string_view key, int value)
    {
        return field(key, static_cast<std::int64_t>(value));
    }
    TraceEvent& field(std::string_view key, double value)
    {
        fields_.emplace_back(std::string(key), JsonValue(value));
        return *this;
    }
    TraceEvent& field(std::string_view key, bool value)
    {
        fields_.emplace_back(std::string(key), JsonValue(value));
        return *this;
    }
    TraceEvent& field(std::string_view key, std::string_view value)
    {
        fields_.emplace_back(std::string(key), JsonValue(value));
        return *this;
    }
    TraceEvent& field(std::string_view key, const char* value)
    {
        return field(key, std::string_view(value));
    }

    [[nodiscard]] std::string_view subsystem() const { return subsystem_; }
    [[nodiscard]] Severity severity() const { return severity_; }
    [[nodiscard]] std::string_view event() const { return event_; }

    // Formats the NDJSON line (no trailing newline):
    //   {"subsys":"wcrt","sev":"info","event":"outer_iteration",...fields}
    [[nodiscard]] std::string to_ndjson() const;

private:
    std::string subsystem_;
    Severity severity_;
    std::string event_;
    std::vector<std::pair<std::string, JsonValue>> fields_;
};

class TraceSink {
public:
    virtual ~TraceSink() = default;
    virtual void consume(const TraceEvent& event) = 0;
};

// Appends NDJSON lines to a caller-owned stream. The stream must outlive
// the sink's installation in the Tracer.
class StreamTraceSink : public TraceSink {
public:
    explicit StreamTraceSink(std::ostream& out) : out_(out) {}
    void consume(const TraceEvent& event) override;

private:
    std::ostream& out_;
    std::mutex mutex_;
};

// Global dispatch point. Filtering happens in two layers:
//  * active(): a sink is installed at all (one relaxed atomic load);
//  * enabled(subsystem): the subsystem passes the filter and the severity
//    floor will be checked per event by emit().
class Tracer {
public:
    [[nodiscard]] static Tracer& global();

    // Installs a sink; pass nullptr to silence tracing again. `subsystems`
    // empty (or containing "all") means every subsystem passes.
    void set_sink(std::shared_ptr<TraceSink> sink,
                  std::set<std::string> subsystems = {},
                  Severity min_severity = Severity::kDebug);

    [[nodiscard]] bool active() const noexcept
    {
        return active_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] bool enabled(std::string_view subsystem) const;

    // Forwards to the sink when the event passes the filters.
    void emit(const TraceEvent& event);

private:
    std::atomic<bool> active_{false};
    mutable std::mutex mutex_;
    std::shared_ptr<TraceSink> sink_;
    std::set<std::string, std::less<>> subsystems_; // empty = all
    Severity min_severity_ = Severity::kDebug;
};

} // namespace cpa::obs
