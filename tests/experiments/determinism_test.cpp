// Serial == parallel, forever: the contract of the parallel trial engine
// (util::ThreadPool + util::seed_for + obs::run_indexed_trials) is that the
// worker count is invisible in every output — schedulability counts, check
// results, run-report JSON (timers carry wall clock and are stripped), CLI
// stdout. These tests pin that contract for sweep, sensitivity, and
// `cpa check` across several seeds; CI additionally runs them under TSan
// to race-check the pool and the thread-local metric staging.
#include "benchdata/generator.hpp"
#include "check/random_check.hpp"
#include "cli/commands.hpp"
#include "experiments/sensitivity.hpp"
#include "experiments/sweep.hpp"
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace cpa {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 7, 20200309};

benchdata::GenerationConfig small_generation()
{
    benchdata::GenerationConfig generation;
    generation.num_cores = 2;
    generation.tasks_per_core = 2;
    generation.cache_sets = 64;
    return generation;
}

analysis::PlatformConfig small_platform()
{
    analysis::PlatformConfig platform;
    platform.num_cores = 2;
    platform.cache_sets = 64;
    return platform;
}

experiments::SweepConfig small_sweep(std::uint64_t seed, std::size_t jobs)
{
    experiments::SweepConfig sweep;
    sweep.u_min = 0.2;
    sweep.u_max = 0.6;
    sweep.u_step = 0.2;
    sweep.task_sets_per_point = 6;
    sweep.seed = seed;
    sweep.jobs = jobs;
    return sweep;
}

// Everything deterministic in a metrics snapshot: counter values, gauge
// values, and timer *counts* (total_ns is wall clock).
struct DeterministicMetrics {
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, std::int64_t> timer_counts;

    bool operator==(const DeterministicMetrics&) const = default;

    static DeterministicMetrics capture()
    {
        const obs::MetricsSnapshot snap =
            obs::MetricsRegistry::global().snapshot();
        DeterministicMetrics result;
        result.counters = snap.counters;
        result.gauges = snap.gauges;
        for (const auto& [name, stat] : snap.timers) {
            result.timer_counts.emplace(name, stat.count);
        }
        return result;
    }
};

// Scoped metrics-on with a clean registry, so each run's snapshot reflects
// exactly that run.
class MetricsSession {
public:
    MetricsSession()
    {
        obs::MetricsRegistry::global().reset();
        obs::set_metrics_enabled(true);
    }
    ~MetricsSession()
    {
        obs::set_metrics_enabled(false);
        obs::MetricsRegistry::global().reset();
    }
    MetricsSession(const MetricsSession&) = delete;
    MetricsSession& operator=(const MetricsSession&) = delete;
};

TEST(SweepDeterminism, JobCountIsInvisibleInResultsAndMetrics)
{
    for (const std::uint64_t seed : kSeeds) {
        std::vector<std::vector<std::size_t>> serial_counts;
        DeterministicMetrics serial_metrics;
        {
            MetricsSession session;
            const auto sweep = experiments::run_utilization_sweep(
                small_generation(), small_platform(),
                experiments::standard_variants(), small_sweep(seed, 1));
            for (const auto& point : sweep.points) {
                serial_counts.push_back(point.schedulable);
            }
            serial_metrics = DeterministicMetrics::capture();
        }

        std::vector<std::vector<std::size_t>> parallel_counts;
        DeterministicMetrics parallel_metrics;
        {
            MetricsSession session;
            const auto sweep = experiments::run_utilization_sweep(
                small_generation(), small_platform(),
                experiments::standard_variants(), small_sweep(seed, 8));
            for (const auto& point : sweep.points) {
                parallel_counts.push_back(point.schedulable);
            }
            parallel_metrics = DeterministicMetrics::capture();
        }

        EXPECT_EQ(serial_counts, parallel_counts) << "seed " << seed;
        EXPECT_EQ(serial_metrics, parallel_metrics) << "seed " << seed;
    }
}

TEST(SensitivityDeterminism, BreakdownUtilizationMatchesAcrossJobs)
{
    const auto pool = benchdata::derive_all(
        benchdata::full_benchmark_table(), 64);
    analysis::AnalysisConfig config;
    for (const std::uint64_t seed : kSeeds) {
        const double serial = experiments::breakdown_utilization(
            small_generation(), pool, small_platform(), config, seed, 0.1,
            1);
        const double parallel = experiments::breakdown_utilization(
            small_generation(), pool, small_platform(), config, seed, 0.1,
            8);
        EXPECT_EQ(serial, parallel) << "seed " << seed;
    }
}

check::RandomCheckConfig small_check(std::uint64_t seed, std::size_t jobs)
{
    check::RandomCheckConfig config;
    config.seed = seed;
    config.trials = 6;
    config.num_cores = 2;
    config.tasks_per_core = 2;
    config.cache_sets = 64;
    config.jobs = jobs;
    config.options.check_simulation = false;
    return config;
}

TEST(CheckDeterminism, ResultsMatchAcrossJobs)
{
    for (const std::uint64_t seed : kSeeds) {
        const auto serial =
            check::run_random_checks(small_check(seed, 1));
        const auto parallel =
            check::run_random_checks(small_check(seed, 8));
        EXPECT_EQ(serial.trials_run, parallel.trials_run);
        EXPECT_EQ(serial.checks_run, parallel.checks_run) << "seed " << seed;
        EXPECT_EQ(serial.violations_by_invariant,
                  parallel.violations_by_invariant);
        ASSERT_EQ(serial.failures.size(), parallel.failures.size());
        for (std::size_t i = 0; i < serial.failures.size(); ++i) {
            EXPECT_EQ(serial.failures[i].trial, parallel.failures[i].trial);
            EXPECT_EQ(serial.failures[i].seed, parallel.failures[i].seed);
            EXPECT_EQ(serial.failures[i].utilization,
                      parallel.failures[i].utilization);
        }
    }
}

TEST(CheckDeterminism, InjectedFailuresKeepTrialOrderAcrossJobs)
{
    // Force every trial to fail so the failure-list *order* (not just the
    // counts) is exercised under parallel execution.
    auto make = [](std::size_t jobs) {
        check::RandomCheckConfig config = small_check(3, jobs);
        config.inject_violation = true;
        return check::run_random_checks(config);
    };
    const auto serial = make(1);
    const auto parallel = make(8);
    ASSERT_EQ(serial.failures.size(), 6u);
    ASSERT_EQ(parallel.failures.size(), 6u);
    for (std::size_t i = 0; i < serial.failures.size(); ++i) {
        EXPECT_EQ(serial.failures[i].trial, i);
        EXPECT_EQ(parallel.failures[i].trial, i);
        EXPECT_EQ(serial.failures[i].seed, parallel.failures[i].seed);
    }
}

// CLI-level byte-identity: `--jobs 1` and `--jobs 8` must produce the same
// stdout, and the same run report once the wall-clock values are
// normalized: timer totals, and the value statistics of "_ns"-suffixed
// (latency) histograms. Histogram sample counts and every non-"_ns"
// histogram stay significant — iteration-count distributions must be
// byte-identical across job counts.
std::string strip_timer_totals(std::string text)
{
    static const std::regex total_ns("\"total_ns\":-?[0-9]+");
    text = std::regex_replace(text, total_ns, "\"total_ns\":0");
    static const std::regex ns_histogram(
        "(\"[^\"]*_ns\":\\{\"count\":-?[0-9]+,)\"sum\":-?[0-9]+,"
        "\"min\":-?[0-9]+,\"max\":-?[0-9]+,\"p50\":-?[0-9]+,"
        "\"p90\":-?[0-9]+,\"p99\":-?[0-9]+");
    return std::regex_replace(
        text, ns_histogram,
        "$1\"sum\":0,\"min\":0,\"max\":0,\"p50\":0,\"p90\":0,\"p99\":0");
}

std::string run_cli_capture(const std::vector<std::string>& args)
{
    std::ostringstream out;
    std::ostringstream err;
    const int exit_code = cli::run_cli(args, out, err);
    EXPECT_EQ(exit_code, 0) << err.str();
    return out.str();
}

TEST(CliDeterminism, SweepStdoutAndReportAreByteIdenticalAcrossJobs)
{
    for (const std::uint64_t seed : kSeeds) {
        const std::vector<std::string> base = {
            "sweep",        "--cores",      "2",  "--tasks-per-core",
            "2",            "--cache-sets", "64", "--task-sets",
            "4",            "--seed",       std::to_string(seed),
            "--metrics-out", "-"};
        auto with_jobs = [&](const std::string& jobs) {
            std::vector<std::string> args = base;
            args.push_back("--jobs");
            args.push_back(jobs);
            return strip_timer_totals(run_cli_capture(args));
        };
        EXPECT_EQ(with_jobs("1"), with_jobs("8")) << "seed " << seed;
    }
}

TEST(CliDeterminism, CheckStdoutAndReportAreByteIdenticalAcrossJobs)
{
    for (const std::uint64_t seed : kSeeds) {
        const std::vector<std::string> base = {
            "check",     "--seed",     std::to_string(seed),
            "--trials",  "5",          "--cores",
            "2",         "--tasks-per-core", "2",
            "--cache-sets", "64",      "--skip-sim",
            "--metrics-out", "-"};
        auto with_jobs = [&](const std::string& jobs) {
            std::vector<std::string> args = base;
            args.push_back("--jobs");
            args.push_back(jobs);
            return strip_timer_totals(run_cli_capture(args));
        };
        EXPECT_EQ(with_jobs("1"), with_jobs("8")) << "seed " << seed;
    }
}

} // namespace
} // namespace cpa
