#include "analysis/config.hpp"

namespace cpa::analysis {

std::string to_string(BusPolicy policy)
{
    switch (policy) {
    case BusPolicy::kFixedPriority:
        return "FP";
    case BusPolicy::kRoundRobin:
        return "RR";
    case BusPolicy::kTdma:
        return "TDMA";
    case BusPolicy::kPerfect:
        return "PerfectBus";
    }
    return "unknown";
}

std::string to_string(CrpdMethod method)
{
    switch (method) {
    case CrpdMethod::kEcbUnion:
        return "ECB-union";
    case CrpdMethod::kUcbOnly:
        return "UCB-only";
    case CrpdMethod::kEcbOnly:
        return "ECB-only";
    }
    return "unknown";
}

std::string to_string(CproMethod method)
{
    switch (method) {
    case CproMethod::kUnion:
        return "CPRO-union";
    case CproMethod::kJobBound:
        return "CPRO-job-bound";
    }
    return "unknown";
}

std::string to_string(WcrtEngine engine)
{
    switch (engine) {
    case WcrtEngine::kReference:
        return "reference";
    case WcrtEngine::kIncremental:
        return "incremental";
    }
    return "unknown";
}

} // namespace cpa::analysis
