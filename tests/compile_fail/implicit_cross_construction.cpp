// MUST NOT COMPILE: Quantity construction is explicit, so neither a raw
// integer nor another dimension silently becomes a Cycles value.
#include "util/units.hpp"

cpa::util::Cycles bad_from_raw()
{
    return 42; // would re-open the door to unit-less arithmetic
}

cpa::util::Cycles bad_from_other_dimension(cpa::util::AccessCount count)
{
    return count;
}
