# Empty dependencies file for direct_mapped_test.
# This may be replaced when dependencies are built.
