#include "obs/run_report.hpp"

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cpa::obs {
namespace {

TEST(RunReport, HeaderComesFirstAndKeepsInsertionOrder)
{
    RunReport report("cpa analyze");
    report.set("file", "demo.taskset");
    const std::string json = report.to_json();
    EXPECT_EQ(json.rfind("{\"schema_version\":1,\"tool\":\"cpa analyze\","
                         "\"file\":\"demo.taskset\"",
                         0),
              0u);
}

TEST(RunReport, SectionsAndListsNest)
{
    RunReport report("bench");
    report.section("config").set("cores", JsonValue(4));
    report.list("sections").push([] {
        JsonValue entry = JsonValue::object();
        entry.set("name", JsonValue("sweep"));
        entry.set("seconds", JsonValue(1.5));
        return entry;
    }());
    const std::string json = report.to_json();
    EXPECT_NE(json.find(R"("config":{"cores":4})"), std::string::npos);
    EXPECT_NE(json.find(R"("sections":[{"name":"sweep","seconds":1.5}])"),
              std::string::npos);
}

TEST(RunReport, MetricsSnapshotSerializesAllThreeKinds)
{
    MetricsSnapshot snapshot;
    snapshot.counters["wcrt.calls"] = 2;
    snapshot.gauges["tables.tasks"] = 8;
    snapshot.timers["tables.build"] = TimerStat{1500, 3};

    RunReport report("test");
    report.set_metrics(snapshot);
    const std::string json = report.to_json();
    EXPECT_NE(json.find(R"("counters":{"wcrt.calls":2})"),
              std::string::npos);
    EXPECT_NE(json.find(R"("gauges":{"tables.tasks":8})"),
              std::string::npos);
    EXPECT_NE(
        json.find(R"("timers":{"tables.build":{"total_ns":1500,"count":3}})"),
        std::string::npos);
}

TEST(RunReport, WriteJsonEmitsExactlyOneLine)
{
    RunReport report("test");
    std::ostringstream out;
    report.write_json(out);
    const std::string text = out.str();
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n');
    EXPECT_EQ(text.find('\n'), text.size() - 1);
}

} // namespace
} // namespace cpa::obs
