// Fixture: a hand-rolled copy of the Eq. (19) reference inner fixed point.
// Re-implementing the loop outside the WcrtEngine seam escapes the
// differential harness that proves the engines byte-identical.
#include <cstdint>

std::int64_t inner_fixed_point(std::int64_t pd, std::int64_t bus)
{
    std::int64_t r = pd;
    for (;;) {
        const std::int64_t next = pd + bus * r;
        if (next == r) {
            return r;
        }
        r = next;
    }
}

std::int64_t response_time(std::int64_t pd, std::int64_t bus)
{
    return inner_fixed_point(pd, bus);
}
