# Compile-fail test driver: syntax-checks one translation unit and asserts
# the expected outcome. Invoked by ctest (see CMakeLists.txt here) as
#   cmake -DCXX=... -DSRC=... -DINCLUDE_DIR=... -DEXPECT=FAIL|PASS
#         -P run_case.cmake
# Running at test time (not configure time) keeps the red cases honest:
# a regression that makes them compile turns the ctest run red.
foreach(required CXX SRC INCLUDE_DIR EXPECT)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "run_case.cmake: missing -D${required}=")
  endif()
endforeach()

# Optional -DEXTRA_FLAGS="-DCPA_CHECKED_ARITH ..." : space-separated extra
# compile flags (the checked-arithmetic cases opt into the trapping build).
set(_extra_flags)
if(DEFINED EXTRA_FLAGS)
  separate_arguments(_extra_flags NATIVE_COMMAND "${EXTRA_FLAGS}")
endif()

execute_process(
    COMMAND ${CXX} -std=c++20 -fsyntax-only ${_extra_flags}
            -I${INCLUDE_DIR} ${SRC}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)

if(EXPECT STREQUAL "FAIL")
  if(rc EQUAL 0)
    message(FATAL_ERROR
        "expected compilation of ${SRC} to FAIL, but it succeeded — the "
        "dimension-safety guarantee this case documents has been lost")
  endif()
  message(STATUS "${SRC} rejected as expected")
elseif(EXPECT STREQUAL "PASS")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "positive control ${SRC} failed to compile — the harness flags or "
        "include path are broken:\n${err}")
  endif()
  message(STATUS "${SRC} compiled as expected")
else()
  message(FATAL_ERROR "run_case.cmake: EXPECT must be FAIL or PASS")
endif()
