#include "util/units.hpp"

#include "analysis/config.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <type_traits>

namespace cpa::util {
namespace {

using namespace literals;

// ---------------------------------------------------------------------------
// Quantity arithmetic within one dimension.

TEST(Quantity, SameDimensionArithmetic)
{
    EXPECT_EQ(3_cy + 4_cy, 7_cy);
    EXPECT_EQ(10_cy - 4_cy, 6_cy);
    EXPECT_EQ(-(5_cy), Cycles{-5});
    Cycles c{10};
    c += 5_cy;
    EXPECT_EQ(c, 15_cy);
    c -= 20_cy;
    EXPECT_EQ(c, Cycles{-5});
    EXPECT_EQ(2_acc + 2_acc, 4_acc);
    EXPECT_EQ(7_us - 2_us, 5_us);
}

TEST(Quantity, ScalarScaling)
{
    EXPECT_EQ(3 * 4_cy, 12_cy);
    EXPECT_EQ(4_cy * 3, 12_cy);
    EXPECT_EQ(12_cy / 4, 3_cy);
    AccessCount a{6};
    a *= 2;
    EXPECT_EQ(a, 12_acc);
}

TEST(Quantity, SameDimensionRatioIsDimensionless)
{
    const std::int64_t ratio = 12_cy / 5_cy;
    EXPECT_EQ(ratio, 2);
    EXPECT_EQ(12_cy % 5_cy, 2_cy);
}

TEST(Quantity, Comparisons)
{
    EXPECT_LT(3_cy, 4_cy);
    EXPECT_GE(4_acc, 4_acc);
    EXPECT_EQ(Cycles{}, 0_cy);
    EXPECT_NE(1_us, 2_us);
}

TEST(Quantity, AccessTimesLatencyIsTime)
{
    // The one legal cross-dimension product (the BAT * d_mem shape).
    EXPECT_EQ(3_acc * 5_cy, 15_cy);
    EXPECT_EQ(5_cy * 3_acc, 15_cy);
    EXPECT_EQ(3_acc * 5_us, 15_us);
    EXPECT_EQ(5_us * 3_acc, 15_us);
    static_assert(std::is_same_v<decltype(3_acc * 5_cy), Cycles>);
    static_assert(std::is_same_v<decltype(3_acc * 5_us), Microseconds>);
}

TEST(Quantity, CrossDimensionOperationsDoNotCompile)
{
    // The negative space is enforced by tests/compile_fail/; here we only
    // pin down the traits that make those cases ill-formed.
    static_assert(!std::is_convertible_v<std::int64_t, Cycles>);
    static_assert(!std::is_convertible_v<Cycles, std::int64_t>);
    static_assert(!std::is_convertible_v<Cycles, AccessCount>);
    static_assert(!std::is_convertible_v<AccessCount, Cycles>);
    static_assert(!std::is_convertible_v<Microseconds, Cycles>);
}

TEST(Quantity, StreamingAndToString)
{
    EXPECT_EQ(to_string(42_cy), "42");
    EXPECT_EQ(to_string(Cycles{-3}), "-3");
    std::ostringstream out;
    out << 7_acc;
    EXPECT_EQ(out.str(), "7");
    EXPECT_DOUBLE_EQ(to_double(5_cy), 5.0);
}

TEST(Quantity, MathHelpers)
{
    EXPECT_EQ(ceil_div(10_cy, 4_cy), 3);
    EXPECT_EQ(floor_div(10_cy, 4_cy), 2);
    EXPECT_EQ(ceil_div_signed(Cycles{-3}, 4_cy), 0);
    EXPECT_EQ(clamp_non_negative(Cycles{-7}), 0_cy);
    EXPECT_EQ(clamp_non_negative(7_cy), 7_cy);
    EXPECT_EQ(saturating_lcm(4_cy, 6_cy, 1000_cy), 12_cy);
    EXPECT_EQ(saturating_lcm(7_cy, 11_cy, 10_cy), 10_cy);
}

// ---------------------------------------------------------------------------
// Conversions: the only places dimensions change.

TEST(Units, MicrosecondRoundTrip)
{
    EXPECT_EQ(cycles_from_microseconds(5_us), 10_cy);
    EXPECT_EQ(cycles_from_microseconds(0_us), 0_cy);
    EXPECT_DOUBLE_EQ(microseconds_from_cycles(10_cy), 5.0);
    EXPECT_DOUBLE_EQ(microseconds_from_cycles(1_cy), 0.5);
}

TEST(Units, AccessTimeConversions)
{
    EXPECT_EQ(cycles_from_accesses(3_acc, 5_cy), 15_cy);
    // floor / signed-ceil pair behind Eq. (5)'s carry-out.
    EXPECT_EQ(accesses_fitting(14_cy, 5_cy), 2_acc);
    EXPECT_EQ(accesses_covering(14_cy, 5_cy), 3_acc);
    EXPECT_EQ(accesses_covering(Cycles{-1}, 5_cy), 0_acc);
    EXPECT_EQ(accesses_from_md_cycles(18257_cy), 1826_acc);
    EXPECT_EQ(accesses_from_blocks(std::size_t{476}), 476_acc);
}

TEST(Units, DefaultDmemEqualsExtractionLatency)
{
    // The convention of DESIGN.md §3.3: the default d_mem (5 us) equals the
    // latency at which the table's MD cycles convert to access counts, so
    // generation utilization equals platform utilization at defaults.
    const analysis::PlatformConfig platform;
    EXPECT_EQ(platform.d_mem, kExtractionLatencyCycles);
    EXPECT_EQ(cycles_from_microseconds(5_us), kExtractionLatencyCycles);
}

// ---------------------------------------------------------------------------
// Strong ids.

TEST(Ids, TaskIdAndCoreIdAreDistinctTypes)
{
    static_assert(!std::is_same_v<TaskId, CoreId>);
    static_assert(!std::is_convertible_v<TaskId, CoreId>);
    static_assert(!std::is_convertible_v<std::size_t, TaskId>);
}

TEST(Ids, ValueAndValidity)
{
    const TaskId t{3};
    EXPECT_EQ(t.value(), 3u);
    EXPECT_TRUE(t.is_valid());
    EXPECT_FALSE(TaskId::invalid().is_valid());
    EXPECT_EQ(TaskId::invalid(), TaskId{static_cast<std::size_t>(-1)});
    EXPECT_TRUE(CoreId{}.is_valid());
}

TEST(Ids, OrderingMatchesPriorityOrder)
{
    // TaskId doubles as the priority index: lower value = more urgent.
    EXPECT_LT(TaskId{0}, TaskId{1});
    EXPECT_EQ(TaskId{2}, TaskId{2});
    EXPECT_GT(CoreId{3}, CoreId{1});
}

TEST(Ids, ToStringShowsInvalidAsNone)
{
    EXPECT_EQ(to_string(TaskId{7}), "7");
    EXPECT_EQ(to_string(TaskId::invalid()), "none");
    std::ostringstream out;
    out << CoreId{2};
    EXPECT_EQ(out.str(), "2");
}

// ---------------------------------------------------------------------------
// Enum names (unchanged by the dimensional layer).

TEST(Units, PolicyNames)
{
    using analysis::BusPolicy;
    EXPECT_EQ(analysis::to_string(BusPolicy::kFixedPriority), "FP");
    EXPECT_EQ(analysis::to_string(BusPolicy::kRoundRobin), "RR");
    EXPECT_EQ(analysis::to_string(BusPolicy::kTdma), "TDMA");
    EXPECT_EQ(analysis::to_string(BusPolicy::kPerfect), "PerfectBus");
}

TEST(Units, CrpdAndCproNames)
{
    using analysis::CproMethod;
    using analysis::CrpdMethod;
    EXPECT_EQ(analysis::to_string(CrpdMethod::kEcbUnion), "ECB-union");
    EXPECT_EQ(analysis::to_string(CrpdMethod::kUcbOnly), "UCB-only");
    EXPECT_EQ(analysis::to_string(CrpdMethod::kEcbOnly), "ECB-only");
    EXPECT_EQ(analysis::to_string(CproMethod::kUnion), "CPRO-union");
    EXPECT_EQ(analysis::to_string(CproMethod::kJobBound), "CPRO-job-bound");
}

} // namespace
} // namespace cpa::util
