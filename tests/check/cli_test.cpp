// End-to-end tests of the `cpa check` command: flag parsing, the catalog
// listing, the report-only vs --fail-on-violation exit-code contract, and
// the JSON run report integration.
#include "check/assert.hpp"
#include "cli/commands.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace cpa::cli {
namespace {

struct CliRun {
    int exit_code = 0;
    std::string out;
    std::string err;
};

CliRun run(const std::vector<std::string>& args)
{
    std::ostringstream out;
    std::ostringstream err;
    CliRun result;
    result.exit_code = run_cli(args, out, err);
    result.out = out.str();
    result.err = err.str();
    return result;
}

// Small deterministic configuration shared by the happy-path tests.
const std::vector<std::string> kSmallCheck = {
    "check",        "--seed",       "1",  "--trials",
    "3",            "--cores",      "2",  "--tasks-per-core",
    "2",            "--cache-sets", "32", "--skip-sim",
};

TEST(CheckCli, CleanRunExitsZeroAndSummarizes)
{
    const CliRun result = run(kSmallCheck);
    EXPECT_EQ(result.exit_code, 0) << result.err;
    EXPECT_NE(result.out.find("3 random task sets"), std::string::npos)
        << result.out;
    EXPECT_NE(result.out.find("0 violations"), std::string::npos)
        << result.out;
}

TEST(CheckCli, ListPrintsTheCatalog)
{
    const CliRun result = run({"check", "--list"});
    EXPECT_EQ(result.exit_code, 0) << result.err;
    EXPECT_NE(result.out.find("lemma1.bas_dominance"), std::string::npos);
    EXPECT_NE(result.out.find("wcrt.fixed_point"), std::string::npos);
    EXPECT_NE(result.out.find("sim.response_soundness"), std::string::npos);
}

TEST(CheckCli, FailOnViolationExitsThreeOnInjectedViolation)
{
    std::vector<std::string> args = kSmallCheck;
    args.insert(args.end(), {"--inject-violation", "--fail-on-violation"});
    const CliRun result = run(args);
    EXPECT_EQ(result.exit_code, 3) << result.out;
    EXPECT_NE(result.out.find("selftest.injected"), std::string::npos)
        << result.out;
    EXPECT_NE(result.err.find("invariant violation"), std::string::npos)
        << result.err;
}

TEST(CheckCli, ViolationsWithoutFailFlagStillExitZero)
{
    std::vector<std::string> args = kSmallCheck;
    args.push_back("--inject-violation");
    const CliRun result = run(args);
    EXPECT_EQ(result.exit_code, 0) << result.err;
    EXPECT_NE(result.out.find("selftest.injected"), std::string::npos)
        << result.out;
}

TEST(CheckCli, MetricsOutWritesRunReport)
{
    std::vector<std::string> args = kSmallCheck;
    args.insert(args.end(), {"--metrics-out", "-"});
    const CliRun result = run(args);
    EXPECT_EQ(result.exit_code, 0) << result.err;
    EXPECT_NE(result.out.find("\"tool\":\"cpa check\""), std::string::npos)
        << result.out;
    EXPECT_NE(result.out.find("\"trials_run\":3"), std::string::npos)
        << result.out;
}

TEST(CheckCli, UnknownFlagIsAnError)
{
    const CliRun result = run({"check", "--bogus", "1"});
    EXPECT_EQ(result.exit_code, 1);
    EXPECT_NE(result.err.find("unknown argument"), std::string::npos)
        << result.err;
}

TEST(CheckCli, UsageMentionsCheck)
{
    const CliRun result = run({"help"});
    EXPECT_EQ(result.exit_code, 0);
    EXPECT_NE(result.out.find("cpa check"), std::string::npos);
    EXPECT_NE(result.out.find("--fail-on-violation"), std::string::npos);
}

TEST(CheckCli, AssertionGateRestoredAfterRun)
{
    // cmd_check arms the runtime assertions for its own duration only.
    check::set_assertions_enabled(false);
    const CliRun result = run(kSmallCheck);
    EXPECT_EQ(result.exit_code, 0) << result.err;
    EXPECT_FALSE(check::assertions_enabled());
}

} // namespace
} // namespace cpa::cli
