
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/bus_bounds.cpp" "src/analysis/CMakeFiles/cpa_analysis.dir/bus_bounds.cpp.o" "gcc" "src/analysis/CMakeFiles/cpa_analysis.dir/bus_bounds.cpp.o.d"
  "/root/repo/src/analysis/config.cpp" "src/analysis/CMakeFiles/cpa_analysis.dir/config.cpp.o" "gcc" "src/analysis/CMakeFiles/cpa_analysis.dir/config.cpp.o.d"
  "/root/repo/src/analysis/interference.cpp" "src/analysis/CMakeFiles/cpa_analysis.dir/interference.cpp.o" "gcc" "src/analysis/CMakeFiles/cpa_analysis.dir/interference.cpp.o.d"
  "/root/repo/src/analysis/multilevel.cpp" "src/analysis/CMakeFiles/cpa_analysis.dir/multilevel.cpp.o" "gcc" "src/analysis/CMakeFiles/cpa_analysis.dir/multilevel.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/cpa_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/cpa_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/schedulability.cpp" "src/analysis/CMakeFiles/cpa_analysis.dir/schedulability.cpp.o" "gcc" "src/analysis/CMakeFiles/cpa_analysis.dir/schedulability.cpp.o.d"
  "/root/repo/src/analysis/wcrt.cpp" "src/analysis/CMakeFiles/cpa_analysis.dir/wcrt.cpp.o" "gcc" "src/analysis/CMakeFiles/cpa_analysis.dir/wcrt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tasks/CMakeFiles/cpa_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cpa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
