#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cpa::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty()) {
        throw std::invalid_argument("TextTable: header must not be empty");
    }
}

void TextTable::add_row(std::vector<std::string> row)
{
    if (row.size() != header_.size()) {
        throw std::invalid_argument("TextTable: row width mismatch");
    }
    rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& out) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
        widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    const auto print_row = [&](const std::vector<std::string>& row) {
        out << "| ";
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << std::left << std::setw(static_cast<int>(widths[c]))
                << row[c];
            out << (c + 1 == row.size() ? " |" : " | ");
        }
        out << '\n';
    };

    print_row(header_);
    out << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
        out << std::string(widths[c] + 2, '-')
            << (c + 1 == header_.size() ? "|" : "+");
    }
    out << '\n';
    for (const auto& row : rows_) {
        print_row(row);
    }
}

namespace {
std::string csv_escape(const std::string& cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos) {
        return cell;
    }
    std::string escaped = "\"";
    for (const char ch : cell) {
        if (ch == '"') {
            escaped += "\"\"";
        } else {
            escaped += ch;
        }
    }
    escaped += '"';
    return escaped;
}

void print_csv_row(std::ostream& out, const std::vector<std::string>& row)
{
    for (std::size_t c = 0; c < row.size(); ++c) {
        out << csv_escape(row[c]);
        if (c + 1 != row.size()) {
            out << ',';
        }
    }
    out << '\n';
}
} // namespace

void TextTable::print_csv(std::ostream& out) const
{
    print_csv_row(out, header_);
    for (const auto& row : rows_) {
        print_csv_row(out, row);
    }
}

std::string TextTable::num(double value, int precision)
{
    std::ostringstream stream;
    stream << std::fixed << std::setprecision(precision) << value;
    return stream.str();
}

} // namespace cpa::util
