// Fixture: the pre-sized-slot idiom — each index writes its own slot,
// the reduction runs after the barrier in trial-index order.
#include "util/thread_pool.hpp"

#include <cstddef>
#include <vector>

double sum_trials(cpa::util::ThreadPool& pool, std::size_t trials)
{
    std::vector<double> slot(trials, 0.0);
    pool.parallel_for_indexed(trials, [&](std::size_t i) {
        slot[i] += static_cast<double>(i);
    });
    double total = 0.0;
    for (double v : slot) {
        total += v;
    }
    return total;
}
