// Maps a box Point to a concrete scenario the AnalysisOracle can check.
//
// The family is deliberately simple enough for closed-form interference
// geometry (see abstract.hpp): `cores` cores, two tasks per core assigned
// round-robin (core = index % cores), unique priorities equal to the task
// index, homogeneous parameters, and nested prefix cache footprints
// PCB ⊆ UCB-universe ⊆ ECB = [0, ecb) over a 64-set cache. The clamps below
// (MDʳ ≤ MD, UCB/PCB ⊆ ECB) make every Point in a validated box realizable,
// so refutation witnesses always replay through check_task_set.
#pragma once

#include "analysis/config.hpp"
#include "tasks/task.hpp"
#include "verify/box.hpp"

#include <cstdint>

namespace cpa::verify {

inline constexpr std::size_t kScenarioCacheSets = 64;

// The clamped parameter values a Point actually realizes. Shared with the
// abstract evaluators so model and scenario cannot drift apart.
struct ScenarioParams {
    std::int64_t md = 0;
    std::int64_t md_residual = 0; // min(md_residual, md)
    std::int64_t pcb = 0;         // min(pcb, ecb)
    std::int64_t ucb = 0;         // min(ucb, ecb)
    std::int64_t ecb = 0;         // min(ecb, kScenarioCacheSets)
    std::int64_t pd = 0;
    std::int64_t period = 0;
    std::int64_t d_mem = 0;
    std::int64_t cores = 0;
};

[[nodiscard]] ScenarioParams clamp_params(const Point& point);

struct Scenario {
    tasks::TaskSet task_set;
    analysis::PlatformConfig platform;
};

[[nodiscard]] Scenario make_scenario(const Point& point);

} // namespace cpa::verify
