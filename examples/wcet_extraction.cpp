// Scenario: extracting cache-persistence parameters from source structure.
//
// A developer models a control loop (sensor read, filter cascade, actuation)
// as a structured program, extracts (PD, MD, MDr, ECB, UCB, PCB) for three
// candidate cache geometries with the built-in static cache analysis — the
// role Heptane plays in the paper — and feeds the result straight into the
// persistence-aware schedulability analysis.
//
//   $ ./examples/wcet_extraction
#include "analysis/wcrt.hpp"
#include "program/extract.hpp"
#include "program/program.hpp"
#include "util/table.hpp"

#include <iostream>

using namespace cpa;

namespace {

// A 60-block control application: init, a 500-iteration filter cascade
// (whose two stages alias each other in small caches), and actuation code.
program::Program control_loop()
{
    program::ProgramBuilder b("control_loop");
    b.straight(0, 8); // init + sensor read
    b.begin_loop(500);
    b.straight(8, 20);        // filter stage A (blocks 8..27)
    b.straight(8 + 128, 20);  // filter stage B: aliases stage A at 128 sets
    b.end_loop();
    b.straight(28, 12); // actuation + logging
    return std::move(b).build();
}

} // namespace

int main()
{
    const program::Program app = control_loop();
    std::cout << "Extracting parameters for '" << app.name() << "' ("
              << app.reference_trace().size() << " block fetches)\n\n";

    util::TextTable table({"cache sets", "PD (cyc)", "MD", "MDr", "|ECB|",
                           "|PCB|", "|UCB|"});
    for (const std::size_t sets : {64u, 128u, 256u}) {
        const auto params = program::extract_parameters(app, {sets, 32});
        table.add_row({std::to_string(sets), util::to_string(params.pd),
                       util::to_string(params.md),
                       util::to_string(params.md_residual),
                       std::to_string(params.ecb.popcount()),
                       std::to_string(params.pcb.popcount()),
                       std::to_string(params.ucb.popcount())});
    }
    table.print(std::cout);
    std::cout << "\nAt 128 sets the two filter stages alias: persistence "
                 "collapses (PCBs drop)\nand the residual demand MDr stays "
                 "near MD. At 256 sets the whole loop is\npersistent: jobs "
                 "after the first pay almost nothing on the bus.\n\n";

    // Deploy the control loop on core 0 next to an extracted data logger on
    // core 1 (compute-heavy, long deadline). The logger's response window
    // spans many control-loop jobs, so the persistence-aware other-core
    // bound (Lemma 2) pays the control loop's footprint only once instead
    // of per job.
    constexpr std::size_t kSets = 256;
    const auto control = program::extract_parameters(app, {kSets, 32});

    program::ProgramBuilder logger_builder("logger");
    logger_builder.straight(1000, 6);
    logger_builder.begin_loop(20000);
    logger_builder.straight(1006, 10); // tight formatting loop
    logger_builder.end_loop();
    const program::Program logger_app = std::move(logger_builder).build();
    const auto logger = program::extract_parameters(logger_app, {kSets, 32});

    tasks::TaskSet ts(2, kSets);
    ts.add_task(program::to_task(control, 0, 2 * control.pd));
    ts.add_task(program::to_task(logger, 1, 3 * logger.pd));
    ts.validate();

    analysis::PlatformConfig platform;
    platform.num_cores = 2;
    platform.cache_sets = kSets;
    platform.d_mem = util::Cycles{100};
    platform.slot_size = 2;

    std::cout << "Control loop (T = " << ts[0].period
              << " cyc) on core 0, logger (T = " << ts[1].period
              << " cyc) on core 1, FP bus, d_mem = 100 cyc:\n";
    for (const bool persistence : {false, true}) {
        analysis::AnalysisConfig config;
        config.policy = analysis::BusPolicy::kFixedPriority;
        config.persistence_aware = persistence;
        const auto wcrt = analysis::compute_wcrt(ts, platform, config);
        std::cout << (persistence ? "  with persistence:    "
                                  : "  without persistence: ")
                  << "logger WCRT = " << wcrt.response[1] << " cycles ("
                  << (wcrt.schedulable ? "schedulable" : "NOT schedulable")
                  << ")\n";
    }
    std::cout << "The gap is the control-loop refetch traffic that Lemma 2 "
                 "proves away.\n";
    return 0;
}
