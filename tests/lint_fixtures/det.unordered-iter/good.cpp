// Unordered lookups are fine; only iterating the container leaks hash
// order. The loop walks a deterministically ordered key vector instead.
#include <unordered_map>
#include <vector>

int total_weight()
{
    std::unordered_map<int, int> weights;
    weights[1] = 10;
    weights[2] = 20;
    const std::vector<int> keys{1, 2};
    int sum = 0;
    for (const int key : keys) {
        sum += weights.at(key);
    }
    return sum;
}
