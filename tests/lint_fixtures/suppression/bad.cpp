// Fixture: an allow() without a reason is itself a finding — and it does
// NOT suppress the escape underneath it.
#include "util/units.hpp"

#include <cstdint>

// cpa-lint: allow(unit.raw-count)
std::int64_t leak(cpa::util::Cycles c)
{
    return c.count();
}
