#include "benchdata/generator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cpa::benchdata {
namespace {

GenerationConfig default_config(double u = 0.5)
{
    GenerationConfig config;
    config.num_cores = 4;
    config.tasks_per_core = 8;
    config.cache_sets = 256;
    config.per_core_utilization = u;
    return config;
}

TEST(Generator, ProducesRequestedShape)
{
    util::Rng rng(1);
    const GenerationConfig config = default_config();
    const auto pool = derive_all(full_benchmark_table(), 256);
    const tasks::TaskSet ts = generate_task_set(rng, config, pool);
    EXPECT_EQ(ts.size(), 32u);
    EXPECT_EQ(ts.num_cores(), 4u);
    for (std::size_t core = 0; core < 4; ++core) {
        EXPECT_EQ(ts.tasks_on_core(core).size(), 8u);
    }
}

TEST(Generator, PeriodsFollowGenerationRecipe)
{
    // T = D = (PD + MD)/U with MD in the table's cycle units.
    util::Rng rng(2);
    const GenerationConfig config = default_config(0.4);
    const auto pool = derive_all(full_benchmark_table(), 256);
    const tasks::TaskSet ts = generate_task_set(rng, config, pool);
    for (const tasks::Task& task : ts.tasks()) {
        EXPECT_EQ(task.deadline, task.period);
        if (task.utilization > 1e-6) {
            const double cost = util::to_double(
                task.pd + task.md * util::kExtractionLatencyCycles);
            const double expected = cost / task.utilization;
            EXPECT_NEAR(util::to_double(task.period), expected,
                        expected * 1e-6 + 1.0)
                << task.name;
        }
    }
}

TEST(Generator, PerCoreGenerationUtilizationMatchesTarget)
{
    util::Rng rng(3);
    const GenerationConfig config = default_config(0.6);
    const auto pool = derive_all(full_benchmark_table(), 256);
    const tasks::TaskSet ts = generate_task_set(rng, config, pool);
    for (std::size_t core = 0; core < config.num_cores; ++core) {
        double total = 0.0;
        for (const std::size_t i : ts.tasks_on_core(core)) {
            total += ts[i].utilization;
        }
        EXPECT_NEAR(total, 0.6, 1e-6);
    }
}

TEST(Generator, PrioritiesAreDeadlineMonotonic)
{
    util::Rng rng(4);
    const auto pool = derive_all(full_benchmark_table(), 256);
    const tasks::TaskSet ts = generate_task_set(rng, default_config(), pool);
    for (std::size_t i = 1; i < ts.size(); ++i) {
        EXPECT_LE(ts[i - 1].deadline, ts[i].deadline);
    }
}

TEST(Generator, RateMonotonicOptionSortsByPeriod)
{
    util::Rng rng(5);
    GenerationConfig config = default_config();
    config.priority = PriorityAssignment::kRateMonotonic;
    const auto pool = derive_all(full_benchmark_table(), 256);
    const tasks::TaskSet ts = generate_task_set(rng, config, pool);
    for (std::size_t i = 1; i < ts.size(); ++i) {
        EXPECT_LE(ts[i - 1].period, ts[i].period);
    }
}

TEST(Generator, DeterministicForSameSeed)
{
    const auto pool = derive_all(full_benchmark_table(), 256);
    util::Rng a(99);
    util::Rng b(99);
    const tasks::TaskSet ts_a = generate_task_set(a, default_config(), pool);
    const tasks::TaskSet ts_b = generate_task_set(b, default_config(), pool);
    ASSERT_EQ(ts_a.size(), ts_b.size());
    for (std::size_t i = 0; i < ts_a.size(); ++i) {
        EXPECT_EQ(ts_a[i].name, ts_b[i].name);
        EXPECT_EQ(ts_a[i].period, ts_b[i].period);
        EXPECT_EQ(ts_a[i].core, ts_b[i].core);
        EXPECT_TRUE(ts_a[i].ecb == ts_b[i].ecb);
    }
}

TEST(Generator, ReproducibleFromStoredTrialSeed)
{
    // The reproduction workflow for a failing trial: `cpa check` reports a
    // trial's derived seed (util::seed_for), and re-seeding the generator
    // from that stored value must rebuild the identical task set — every
    // field, not just the shape.
    const auto pool = derive_all(full_benchmark_table(), 256);
    const std::uint64_t stored = util::seed_for(20200309, 17);
    util::Rng original(stored);
    const tasks::TaskSet ts_a =
        generate_task_set(original, default_config(0.45), pool);

    util::Rng replay(stored);
    const tasks::TaskSet ts_b =
        generate_task_set(replay, default_config(0.45), pool);
    ASSERT_EQ(ts_a.size(), ts_b.size());
    for (std::size_t i = 0; i < ts_a.size(); ++i) {
        EXPECT_EQ(ts_a[i].name, ts_b[i].name);
        EXPECT_EQ(ts_a[i].core, ts_b[i].core);
        EXPECT_EQ(ts_a[i].pd, ts_b[i].pd);
        EXPECT_EQ(ts_a[i].md, ts_b[i].md);
        EXPECT_EQ(ts_a[i].md_residual, ts_b[i].md_residual);
        EXPECT_EQ(ts_a[i].period, ts_b[i].period);
        EXPECT_EQ(ts_a[i].deadline, ts_b[i].deadline);
        EXPECT_EQ(ts_a[i].jitter, ts_b[i].jitter);
        EXPECT_TRUE(ts_a[i].ecb == ts_b[i].ecb);
        EXPECT_TRUE(ts_a[i].ucb == ts_b[i].ucb);
        EXPECT_TRUE(ts_a[i].pcb == ts_b[i].pcb);
        EXPECT_DOUBLE_EQ(ts_a[i].utilization, ts_b[i].utilization);
    }
}

TEST(Generator, WorksAtEveryExperimentCacheSize)
{
    for (const std::size_t sets : {32u, 64u, 128u, 256u, 512u, 1024u}) {
        util::Rng rng(6);
        GenerationConfig config = default_config();
        config.cache_sets = sets;
        const auto pool = derive_all(full_benchmark_table(), sets);
        const tasks::TaskSet ts = generate_task_set(rng, config, pool);
        EXPECT_EQ(ts.cache_sets(), sets);
        ts.validate();
    }
}

TEST(Generator, RejectsMismatchedPool)
{
    util::Rng rng(7);
    const auto pool = derive_all(full_benchmark_table(), 128);
    EXPECT_THROW((void)generate_task_set(rng, default_config(), pool),
                 std::invalid_argument);
}

TEST(Generator, RejectsEmptyPool)
{
    util::Rng rng(8);
    EXPECT_THROW((void)generate_task_set(rng, default_config(), {}),
                 std::invalid_argument);
}

TEST(GeneratorPartitioned, ProducesValidAssignment)
{
    util::Rng rng(21);
    const GenerationConfig config = default_config(0.5);
    const auto pool = derive_all(full_benchmark_table(), 256);
    for (const auto heuristic :
         {tasks::PartitionHeuristic::kFirstFit,
          tasks::PartitionHeuristic::kWorstFit,
          tasks::PartitionHeuristic::kCacheAware}) {
        const tasks::TaskSet ts =
            generate_task_set_partitioned(rng, config, pool, heuristic);
        EXPECT_EQ(ts.size(), 32u);
        ts.validate();
        // The balancing heuristics spread tasks over every core; first-fit
        // deliberately packs and may leave cores empty.
        if (heuristic != tasks::PartitionHeuristic::kFirstFit) {
            for (std::size_t core = 0; core < 4; ++core) {
                EXPECT_FALSE(ts.tasks_on_core(core).empty())
                    << tasks::to_string(heuristic);
            }
        }
    }
}

TEST(GeneratorPartitioned, TotalUtilizationMatchesGlobalTarget)
{
    util::Rng rng(22);
    const GenerationConfig config = default_config(0.4);
    const auto pool = derive_all(full_benchmark_table(), 256);
    const tasks::TaskSet ts = generate_task_set_partitioned(
        rng, config, pool, tasks::PartitionHeuristic::kWorstFit);
    double total = 0.0;
    for (const tasks::Task& task : ts.tasks()) {
        total += task.utilization;
    }
    EXPECT_NEAR(total, 0.4 * 4, 1e-6);
}

TEST(GeneratorPartitioned, CacheAwareReducesSameCoreOverlap)
{
    const auto pool = derive_all(full_benchmark_table(), 256);
    const GenerationConfig config = default_config(0.4);
    std::size_t aware_wins = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        util::Rng rng_a(seed);
        util::Rng rng_b(seed);
        const tasks::TaskSet aware = generate_task_set_partitioned(
            rng_a, config, pool, tasks::PartitionHeuristic::kCacheAware);
        const tasks::TaskSet worst = generate_task_set_partitioned(
            rng_b, config, pool, tasks::PartitionHeuristic::kWorstFit);
        if (tasks::same_core_overlap(aware.tasks(), 4) <=
            tasks::same_core_overlap(worst.tasks(), 4)) {
            ++aware_wins;
        }
    }
    EXPECT_GE(aware_wins, 8u); // dominant, allowing slack-rule ties
}

TEST(Generator, UtilizationOneKeepsPerTaskUtilizationAtMostOne)
{
    util::Rng rng(9);
    const auto pool = derive_all(full_benchmark_table(), 256);
    const tasks::TaskSet ts =
        generate_task_set(rng, default_config(1.0), pool);
    for (const tasks::Task& task : ts.tasks()) {
        const double cost = util::to_double(
            task.pd + task.md * util::kExtractionLatencyCycles);
        EXPECT_LE(cost, util::to_double(task.period) * (1.0 + 1e-9))
            << task.name;
    }
}

} // namespace
} // namespace cpa::benchdata
