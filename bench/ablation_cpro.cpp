// Ablation (not in the paper): CPRO-union (Eq. (14), the paper's choice)
// vs. the job-bounded CPRO refinement, which additionally caps persistent
// reloads by how often the evicting tasks can actually execute in the
// window. The paper notes CPRO "can be calculated using any of the
// approaches presented in [3], [4]" — this bench quantifies how much the
// choice matters for bus-contention schedulability (FP bus, paper defaults).
#include "common.hpp"

int main()
{
    using namespace cpa;
    bench::BenchReport bench_report("ablation_cpro");
    using analysis::BusPolicy;
    using analysis::CproMethod;

    const std::size_t task_sets = experiments::task_sets_from_env(120);

    std::vector<experiments::AnalysisVariant> variants;
    for (const auto& [label, method] :
         {std::pair{"union", CproMethod::kUnion},
          std::pair{"job-bound", CproMethod::kJobBound}}) {
        for (const auto& [policy_label, policy] :
             {std::pair{"FP", BusPolicy::kFixedPriority},
              std::pair{"RR", BusPolicy::kRoundRobin}}) {
            analysis::AnalysisConfig config;
            config.policy = policy;
            config.persistence_aware = true;
            config.cpro = method;
            variants.push_back(
                {std::string(policy_label) + "-" + label, config});
        }
    }
    // Reference: persistence off (CPRO irrelevant).
    analysis::AnalysisConfig off;
    off.policy = BusPolicy::kFixedPriority;
    off.persistence_aware = false;
    variants.push_back({"FP-NoCP", off});

    const auto sweep = experiments::run_utilization_sweep(
        bench::default_generation(), bench::default_platform(), variants,
        bench::fig2_sweep(task_sets));
    bench::print_sweep("Ablation: CPRO method (persistence-aware analyses)",
                       sweep);
    return 0;
}
