// Figure-trend regression tests: small-scale versions of the claims the
// benches reproduce at full scale. These pin the qualitative results of the
// paper (Fig. 2/3) against regressions in any layer of the stack.
#include "experiments/sweep.hpp"

#include <gtest/gtest.h>

namespace cpa::experiments {
namespace {

SweepConfig small_sweep()
{
    SweepConfig sweep;
    sweep.u_min = 0.15;
    sweep.u_max = 0.75;
    sweep.u_step = 0.15;
    sweep.task_sets_per_point = 12;
    sweep.seed = 2020;
    return sweep;
}

benchdata::GenerationConfig generation(std::size_t cores)
{
    benchdata::GenerationConfig gen;
    gen.num_cores = cores;
    gen.tasks_per_core = 4;
    gen.cache_sets = 256;
    return gen;
}

analysis::PlatformConfig platform(std::size_t cores)
{
    analysis::PlatformConfig p;
    p.num_cores = cores;
    return p;
}

TEST(Trends, WeightedSchedulabilityDecreasesWithCores)
{
    // Fig. 3a: more cores -> more bus interference -> lower weighted
    // schedulability, for the FP persistence-aware analysis.
    const auto variants = standard_variants(false);
    double previous = 2.0;
    for (const std::size_t cores : {2u, 4u, 8u}) {
        const UtilizationSweep sweep = run_utilization_sweep(
            generation(cores), platform(cores), variants, small_sweep());
        const double weighted = weighted_schedulability(sweep, 0); // FP-CP
        EXPECT_LE(weighted, previous + 0.05) << cores; // small-sample slack
        previous = weighted;
    }
}

TEST(Trends, PersistenceGapShrinksWithDmem)
{
    // Fig. 3b: at larger d_mem everything degrades and the CP gap narrows.
    const auto variants = standard_variants(false);
    double gap_small = 0.0;
    double gap_large = 0.0;
    for (const auto& [d_mem_us, gap] :
         {std::pair<int, double*>{2, &gap_small}, {10, &gap_large}}) {
        analysis::PlatformConfig p = platform(4);
        p.d_mem = util::cycles_from_microseconds(util::Microseconds{d_mem_us});
        const UtilizationSweep sweep = run_utilization_sweep(
            generation(4), p, variants, small_sweep());
        *gap = weighted_schedulability(sweep, 0) -
               weighted_schedulability(sweep, 1); // FP-CP minus FP-NoCP
    }
    EXPECT_GE(gap_small, gap_large - 0.05);
    EXPECT_GT(gap_small, 0.0);
}

TEST(Trends, PersistenceGainGrowsWithCacheSize)
{
    // Fig. 3c: bigger caches -> more PCBs -> the persistence-aware analysis
    // improves at least as fast as the oblivious one.
    const auto variants = standard_variants(false);
    double cp_small = 0.0;
    double cp_large = 0.0;
    double nocp_small = 0.0;
    double nocp_large = 0.0;
    for (const auto& [sets, cp, nocp] :
         {std::tuple<std::size_t, double*, double*>{64, &cp_small,
                                                    &nocp_small},
          {1024, &cp_large, &nocp_large}}) {
        benchdata::GenerationConfig gen = generation(4);
        gen.cache_sets = sets;
        analysis::PlatformConfig p = platform(4);
        p.cache_sets = sets;
        const UtilizationSweep sweep =
            run_utilization_sweep(gen, p, variants, small_sweep());
        *cp = weighted_schedulability(sweep, 0);
        *nocp = weighted_schedulability(sweep, 1);
    }
    EXPECT_GE(cp_large + 0.05, cp_small);
    EXPECT_GE((cp_large - cp_small) + 0.06, nocp_large - nocp_small);
}

TEST(Trends, SlottedPoliciesDegradeWithSlotSize)
{
    // Fig. 3d: RR/TDMA schedulability decreases as s grows.
    const auto variants = slotted_variants();
    double previous_rr = 2.0;
    double previous_tdma = 2.0;
    for (const std::int64_t s : {1, 3, 6}) {
        analysis::PlatformConfig p = platform(4);
        p.slot_size = s;
        const UtilizationSweep sweep = run_utilization_sweep(
            generation(4), p, variants, small_sweep());
        const double rr = weighted_schedulability(sweep, 0);   // RR-CP
        const double tdma = weighted_schedulability(sweep, 2); // TDMA-CP
        EXPECT_LE(rr, previous_rr + 0.05) << "s=" << s;
        EXPECT_LE(tdma, previous_tdma + 0.05) << "s=" << s;
        previous_rr = rr;
        previous_tdma = tdma;
    }
}

} // namespace
} // namespace cpa::experiments
