// RunReport: machine-readable summary of one tool/bench invocation.
//
// Collects free-form metadata (tool name, configuration, verdicts) and a
// MetricsSnapshot, and serializes the whole thing as a single JSON object:
//
//   {
//     "schema_version": 2,
//     "tool": "cpa analyze",
//     "provenance": {"git_sha": "...", "compiler": "...", ...},
//     ...caller metadata...,
//     "metrics": {
//       "counters":   {"wcrt.outer_iterations": 12, ...},
//       "gauges":     {"tables.gamma_nonzero": 42, ...},
//       "timers":     {"tables.build": {"total_ns": 1234, "count": 1}, ...},
//       "histograms": {"wcrt.compute_ns": {"count": 3, "sum": 900,
//                       "min": 200, "max": 400, "p50": 255, "p90": 400,
//                       "p99": 400}, ...}
//     }
//   }
//
// Schema history: v2 added the provenance block and the histograms metric
// group (both required by scripts/check_bench_json.py).
//
// The same shape is used by `cpa --metrics-out` and the bench BENCH_*.json
// emitter (validated by scripts/check_bench_json.py).
#pragma once

#include "obs/json.hpp"
#include "obs/metrics.hpp"

#include <iosfwd>
#include <string_view>

namespace cpa::obs {

inline constexpr int kRunReportSchemaVersion = 2;

class RunReport {
public:
    explicit RunReport(std::string_view tool);

    // Top-level metadata (insertion order preserved in the output).
    void set(std::string_view key, JsonValue value);
    // Returns a mutable reference to a top-level object/array member,
    // creating it if needed, for nested building.
    JsonValue& section(std::string_view key);
    JsonValue& list(std::string_view key);

    // Stores the snapshot under "metrics".
    void set_metrics(const MetricsSnapshot& snapshot);

    // Serializes the report (single line, trailing newline).
    void write_json(std::ostream& out) const;
    [[nodiscard]] std::string to_json() const;

private:
    JsonValue root_;
};

// Converts a snapshot to the
// {"counters":…,"gauges":…,"timers":…,"histograms":…} object.
[[nodiscard]] JsonValue metrics_to_json(const MetricsSnapshot& snapshot);

// One histogram as its report object (count/sum/min/max/p50/p90/p99).
[[nodiscard]] JsonValue histogram_to_json(const HistogramStat& stat);

// The build-provenance block embedded in every report (obs/build_info.hpp)
// and printed by `cpa version --json`.
[[nodiscard]] JsonValue provenance_json();

} // namespace cpa::obs
