#include "analysis/wcrt.hpp"

#include "analysis/wcrt_incremental.hpp"
#include "check/assert.hpp"
#include "obs/obs.hpp"
#include "util/math.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>

namespace cpa::analysis {

const char* to_string(StopReason reason)
{
    switch (reason) {
    case StopReason::kConverged:
        return "converged";
    case StopReason::kDeadlineMiss:
        return "deadline_miss";
    case StopReason::kNoOuterConvergence:
        return "no_outer_convergence";
    }
    return "unknown";
}

namespace {

constexpr std::size_t kMaxOuterIterations = 256;
// kMaxInnerIterations lives in wcrt_incremental.hpp: the budget is shared
// by both engines so they exhaust (and report) identically.

constexpr std::string_view kTraceSubsystem = "wcrt";

// Solves the per-task recurrence of Eq. (19) for τ_i with the other tasks'
// response-time estimates frozen in `response`. Returns the first r with
// rhs(r) <= r, or the first value exceeding D_i (the caller treats any
// value > D_i as a failure). rhs(t) upper-bounds the work that can delay
// τ_i in ANY window of length t, so rhs(r) <= r ends the busy window and r
// is a sound response-time bound even though the persistence-aware rhs is
// not perfectly monotone (Lemma 2's carry-out re-pricing; see
// bus_bounds_test.cpp, Lemma2CarryOutDipIsPossible).
// `iterations_used` reports how many recurrence steps were taken;
// `budget_exhausted` is set when the iteration budget ran out. This is
// WcrtEngine::kReference — the oracle the incremental engine
// (wcrt_incremental.cpp) is differentially tested against; keep its loop
// shape verbatim.
Cycles inner_fixed_point(const tasks::TaskSet& ts,
                         const PlatformConfig& platform,
                         const BusContentionAnalysis& bounds, std::size_t i,
                         const std::vector<Cycles>& response,
                         std::size_t& iterations_used,
                         bool& budget_exhausted)
{
    CPA_PROFILE_SPAN_ARG("wcrt.inner", "task", i);
    const tasks::Task& task = ts[i];
    const Cycles start =
        std::max(response[i], task.isolated_demand(platform.d_mem));
    Cycles r = std::max(start, Cycles{1});

    for (std::size_t iter = 0; iter < kMaxInnerIterations; ++iter) {
        iterations_used = iter + 1;
        Cycles rhs = task.pd;
        for (const std::size_t j : ts.tasks_on_core(task.core)) {
            if (j >= i) {
                break;
            }
            rhs += util::ceil_div(r, ts[j].period) * ts[j].pd;
        }
        rhs += bounds.bat(i, r, response) * platform.d_mem;

        if (rhs <= r) {
            return r; // busy window closed: all delaying work fits in r
        }
        r = rhs;
        if (r > task.effective_deadline()) {
            return r; // deadline already missed; no need to converge
        }
    }
    // Did not converge within the iteration budget: report a value that the
    // caller will classify as a deadline miss (conservative). The caller
    // emits the wcrt.budget_exhausted counter + trace event so this is
    // distinguishable from a real miss.
    budget_exhausted = true;
    return task.effective_deadline() + Cycles{1};
}

void trace_budget_exhausted(const tasks::TaskSet& ts, std::size_t i,
                            std::size_t outer)
{
    CPA_COUNT("wcrt.budget_exhausted");
    if (!CPA_TRACE_ENABLED(kTraceSubsystem)) {
        return;
    }
    obs::Tracer::global().emit(
        obs::TraceEvent(kTraceSubsystem, obs::Severity::kWarn,
                        "inner_budget_exhausted")
            .field("task", i)
            .field("task_name", ts[i].name)
            .field("inner_budget", kMaxInnerIterations)
            .field("outer_iteration", outer + 1));
}

void trace_outer_iteration(std::size_t outer, bool changed,
                           std::size_t inner_this_round,
                           const std::vector<Cycles>& response)
{
    if (!CPA_TRACE_ENABLED(kTraceSubsystem)) {
        return;
    }
    Cycles max_response{0};
    Cycles total_response{0};
    for (const Cycles r : response) {
        max_response = std::max(max_response, r);
        total_response += r;
    }
    obs::Tracer::global().emit(
        obs::TraceEvent(kTraceSubsystem, obs::Severity::kInfo,
                        "outer_iteration")
            .field("iter", outer + 1)
            .field("changed", changed)
            .field("inner_iterations", inner_this_round)
            .field("max_response", util::to_metric(max_response))
            .field("total_response", util::to_metric(total_response)));
}

void record_metrics(const WcrtResult& result)
{
    CPA_COUNT("wcrt.calls");
    CPA_COUNT_ADD("wcrt.outer_iterations",
                  static_cast<std::int64_t>(result.outer_iterations));
    CPA_COUNT_ADD("wcrt.inner_iterations",
                  static_cast<std::int64_t>(result.inner_iterations));
    // Per-call iteration distributions (deterministic — no "_ns" suffix —
    // so bench_compare.py hard-gates them): how hard the fixed points had
    // to work, not just the totals.
    CPA_HISTOGRAM("wcrt.outer_iterations_per_call",
                  static_cast<std::int64_t>(result.outer_iterations));
    CPA_HISTOGRAM("wcrt.inner_iterations_per_call",
                  static_cast<std::int64_t>(result.inner_iterations));
    if (!result.schedulable) {
        CPA_COUNT("wcrt.unschedulable");
    }
}

} // namespace

WcrtResult compute_wcrt(const tasks::TaskSet& ts,
                        const PlatformConfig& platform,
                        const AnalysisConfig& config,
                        const InterferenceTables& tables)
{
    if (ts.num_cores() > platform.num_cores) {
        throw std::invalid_argument(
            "compute_wcrt: task set uses more cores than the platform has");
    }
    CPA_SCOPED_TIMER("wcrt.compute");
    CPA_PROFILE_SPAN("wcrt.compute");
    WcrtResult result;
    const std::size_t n = ts.size();
    result.response.resize(n);

    // Initialization prescribed by the paper: R_i = PD_i + MD_i * d_mem.
    for (std::size_t i = 0; i < n; ++i) {
        result.response[i] = ts[i].isolated_demand(platform.d_mem);
    }

    const BusContentionAnalysis bounds(ts, platform, config, tables);

    // The engine seam: both solvers compute the exact same Eq. (19) iterate
    // sequence (differentially tested); the incremental one is constructed
    // once so its scratch arenas are reused across all inner solves.
    const bool incremental =
        config.wcrt_engine == WcrtEngine::kIncremental;
    std::optional<IncrementalWcrtSolver> solver;
    if (incremental) {
        solver.emplace(ts, platform, config, tables);
    }

    for (std::size_t outer = 0; outer < kMaxOuterIterations; ++outer) {
        CPA_PROFILE_SPAN_ARG("wcrt.outer", "iter", outer + 1);
        result.outer_iterations = outer + 1;
        bool changed = false;
        std::size_t inner_this_round = 0;
        for (std::size_t i = 0; i < n; ++i) {
            std::size_t inner_used = 0;
            bool budget_exhausted = false;
            const Cycles updated =
                incremental
                    ? solver->solve(i, result.response, inner_used,
                                    budget_exhausted)
                    : inner_fixed_point(ts, platform, bounds, i,
                                        result.response, inner_used,
                                        budget_exhausted);
            inner_this_round += inner_used;
            result.inner_iterations += inner_used;
            if (budget_exhausted) {
                result.inner_budget_exhausted = true;
                trace_budget_exhausted(ts, i, outer);
            }
            if (updated > ts[i].effective_deadline()) {
                result.schedulable = false;
                result.failed_task = TaskId{i};
                result.response[i] = updated;
                result.stop_reason = StopReason::kDeadlineMiss;
                trace_outer_iteration(outer, true, inner_this_round,
                                      result.response);
                if (CPA_TRACE_ENABLED(kTraceSubsystem)) {
                    // First-failure cause: which task broke, at which outer
                    // round, and by how much.
                    obs::Tracer::global().emit(
                        obs::TraceEvent(kTraceSubsystem,
                                        obs::Severity::kWarn,
                                        "deadline_miss")
                            .field("task", i)
                            .field("task_name", ts[i].name)
                            .field("core", ts[i].core)
                            .field("response", util::to_metric(updated))
                            .field("deadline",
                                   util::to_metric(
                                       ts[i].effective_deadline()))
                            .field("outer_iteration", outer + 1));
                }
                record_metrics(result);
                return result;
            }
            // The outer loop starts each inner solve at the previous
            // estimate, so estimates may only grow until the global fixed
            // point (the convergence argument of Eq. (19) rests on this).
            CPA_CHECK_ASSERT(updated >= result.response[i],
                             "wcrt.outer_monotone",
                             "task " + ts[i].name + ": response shrank from " +
                                 util::to_string(result.response[i]) +
                                 " to " + util::to_string(updated));
            if (updated != result.response[i]) {
                result.response[i] = updated;
                changed = true;
            }
        }
        trace_outer_iteration(outer, changed, inner_this_round,
                              result.response);
        if (!changed) {
            result.schedulable = true;
            result.stop_reason = StopReason::kConverged;
            record_metrics(result);
            return result;
        }
    }

    // Outer loop failed to reach a global fixed point within the budget;
    // declare the set unschedulable (conservative).
    result.schedulable = false;
    result.stop_reason = StopReason::kNoOuterConvergence;
    if (CPA_TRACE_ENABLED(kTraceSubsystem)) {
        obs::Tracer::global().emit(
            obs::TraceEvent(kTraceSubsystem, obs::Severity::kWarn,
                            "no_outer_convergence")
                .field("outer_iterations", result.outer_iterations));
    }
    record_metrics(result);
    return result;
}

WcrtResult compute_wcrt(const tasks::TaskSet& ts,
                        const PlatformConfig& platform,
                        const AnalysisConfig& config)
{
    const InterferenceTables tables(ts, config.crpd);
    return compute_wcrt(ts, platform, config, tables);
}

} // namespace cpa::analysis
