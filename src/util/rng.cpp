#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace cpa::util {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi) {
        throw std::invalid_argument("Rng::uniform_int: lo > hi");
    }
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
}

std::size_t Rng::uniform_index(std::size_t n)
{
    if (n == 0) {
        throw std::invalid_argument("Rng::uniform_index: n must be positive");
    }
    std::uniform_int_distribution<std::size_t> dist(0, n - 1);
    return dist(engine_);
}

double Rng::uniform_real()
{
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
}

double Rng::uniform_real(double lo, double hi)
{
    if (!(lo < hi)) {
        throw std::invalid_argument("Rng::uniform_real: lo must be < hi");
    }
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

Rng Rng::fork()
{
    return Rng(engine_());
}

std::vector<double> uunifast(Rng& rng, std::size_t n, double total_utilization)
{
    if (n == 0) {
        throw std::invalid_argument("uunifast: n must be positive");
    }
    if (total_utilization < 0.0) {
        throw std::invalid_argument("uunifast: utilization must be >= 0");
    }
    std::vector<double> utilizations;
    utilizations.reserve(n);
    double remaining = total_utilization;
    for (std::size_t i = 1; i < n; ++i) {
        const double exponent = 1.0 / static_cast<double>(n - i);
        const double next = remaining * std::pow(rng.uniform_real(), exponent);
        utilizations.push_back(remaining - next);
        remaining = next;
    }
    utilizations.push_back(remaining);
    return utilizations;
}

} // namespace cpa::util
