#include "check/invariants.hpp"

#include "analysis/demand.hpp"
#include "obs/obs.hpp"
#include "util/math.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>
#include <utility>

namespace cpa::check {

namespace {

using analysis::BusPolicy;

constexpr std::string_view kTraceSubsystem = "check";

std::string policy_tag(BusPolicy policy)
{
    return analysis::to_string(policy);
}

} // namespace

const std::vector<InvariantInfo>& invariant_catalog()
{
    static const std::vector<InvariantInfo> catalog = {
        {"structure.footprints",
         "UCB and PCB are subsets of ECB; all masks range over the cache "
         "universe"},
        {"structure.demand", "0 <= MDr <= MD and PD >= 0 for every task"},
        {"structure.windows",
         "0 < D <= T, 0 <= J, J + D <= T, and a valid core per task"},
        {"demand.md_hat_dominance",
         "MD-hat_i(n) <= n * MD_i (Eq. 10 never exceeds isolation)"},
        {"demand.md_hat_monotone", "MD-hat_i(n) is non-decreasing in n"},
        {"demand.md_hat_subadditive",
         "MD-hat_i(m+n) <= MD-hat_i(m) + MD-hat_i(n)"},
        {"tables.gamma_shape",
         "gamma(i,j) = 0 unless j has higher priority; entries bounded by "
         "the cache size and non-decreasing in the analysis level"},
        {"tables.cpro_shape",
         "CPRO overlaps bounded by |PCB_j| and non-decreasing in the "
         "analysis level; pair overlaps only between same-core tasks"},
        {"lemma1.bas_dominance",
         "BAS-hat_i(t) <= BAS_i(t) (Lemma 1 / Eq. 16)"},
        {"bounds.bas_monotone",
         "BAS_i(t) is non-decreasing in t, with and without persistence"},
        {"lemma2.bao_dominance",
         "BAO-hat <= BAO per core and priority level (Lemma 2 / Eq. 17-18)"},
        {"bat.dominates_bas",
         "BAT_i(t) >= BAS_i(t) under FP/RR/TDMA and equals it on the "
         "perfect bus"},
        {"bat.persistence_dominance",
         "persistence-aware BAT <= baseline BAT under every arbiter "
         "(Eq. 7-9 preserve the Lemma 1/2 dominance)"},
        {"wcrt.fixed_point",
         "every converged R_i satisfies Eq. (19): rhs(R_i) <= R_i"},
        {"wcrt.response_bounds",
         "converged R_i lies in [PD_i + MD_i * d_mem, D_i - J_i]"},
        {"wcrt.persistence_dominance",
         "the persistence-aware analysis accepts whatever the baseline "
         "accepts, with responses no larger"},
        {"sim.response_soundness",
         "simulator-observed responses never exceed the analytical WCRT"},
    };
    return catalog;
}

AnalysisOracle::AnalysisOracle(const tasks::TaskSet& ts,
                               const PlatformConfig& platform,
                               analysis::CrpdMethod crpd)
    : ts_(ts), platform_(platform), tables_(ts, crpd)
{
}

AnalysisOracle::~AnalysisOracle() = default;

AccessCount AnalysisOracle::md_hat(std::size_t i, std::int64_t n_jobs) const
{
    return analysis::md_hat(ts_[i], n_jobs);
}

AccessCount AnalysisOracle::gamma(std::size_t i, std::size_t j) const
{
    return tables_.gamma(i, j);
}

AccessCount AnalysisOracle::cpro_overlap(std::size_t j, std::size_t i) const
{
    return tables_.cpro_overlap(j, i);
}

AccessCount AnalysisOracle::pair_overlap(std::size_t j, std::size_t s) const
{
    return tables_.pair_overlap(j, s);
}

AccessCount AnalysisOracle::bas(const AnalysisConfig& config, std::size_t i,
                                 Cycles t) const
{
    const analysis::BusContentionAnalysis bounds(ts_, platform_, config,
                                                 tables_);
    return bounds.bas(i, t);
}

AccessCount AnalysisOracle::bao(const AnalysisConfig& config,
                                 std::size_t core, std::size_t k, Cycles t,
                                 const std::vector<Cycles>& response) const
{
    const analysis::BusContentionAnalysis bounds(ts_, platform_, config,
                                                 tables_);
    return bounds.bao(core, k, t, response);
}

AccessCount AnalysisOracle::bat(const AnalysisConfig& config, std::size_t i,
                                 Cycles t,
                                 const std::vector<Cycles>& response) const
{
    const analysis::BusContentionAnalysis bounds(ts_, platform_, config,
                                                 tables_);
    return bounds.bat(i, t, response);
}

analysis::WcrtResult AnalysisOracle::wcrt(const AnalysisConfig& config) const
{
    return analysis::compute_wcrt(ts_, platform_, config, tables_);
}

sim::SimResult AnalysisOracle::simulate(const sim::SimConfig& config) const
{
    return sim::simulate(ts_, platform_, config);
}

namespace {

// One check_task_set() run: evaluates the catalog top to bottom, recording a
// Violation per failed relation (and a trace event / counter through the
// obs layer so CLI runs surface them in run reports).
class Checker {
public:
    Checker(const AnalysisOracle& oracle, const CheckOptions& options)
        : oracle_(oracle), options_(options), ts_(oracle.task_set()),
          platform_(oracle.platform())
    {
    }

    CheckResult run()
    {
        if (ts_.empty()) {
            return std::move(result_);
        }
        check_structure();
        check_demand();
        check_tables();
        check_bus_bounds();
        check_wcrt();
        if (options_.check_simulation) {
            check_simulation();
        }
        CPA_COUNT_ADD("check.checks_run",
                      static_cast<std::int64_t>(result_.checks_run));
        return std::move(result_);
    }

private:
    template <typename DetailFn>
    void require(const char* invariant, bool ok, DetailFn&& detail)
    {
        ++result_.checks_run;
        if (ok) {
            return;
        }
        std::string text = detail();
        CPA_COUNT("check.violations");
        if (CPA_TRACE_ENABLED(kTraceSubsystem)) {
            obs::Tracer::global().emit(
                obs::TraceEvent(kTraceSubsystem, obs::Severity::kError,
                                "invariant_violation")
                    .field("invariant", invariant)
                    .field("detail", text));
        }
        result_.violations.push_back(Violation{invariant, std::move(text)});
    }

    [[nodiscard]] AnalysisConfig make_config(BusPolicy policy,
                                             bool persistence) const
    {
        AnalysisConfig config;
        config.policy = policy;
        config.persistence_aware = persistence;
        config.crpd = options_.crpd;
        config.cpro = options_.cpro;
        config.wcrt_engine = options_.engine;
        return config;
    }

    // Window lengths the bound-level invariants probe for task i: spread
    // from sub-period to beyond the hyper-job horizon so job-count
    // boundaries of Eq. (1)/(6) are crossed.
    [[nodiscard]] std::vector<Cycles> probe_windows(std::size_t i) const
    {
        const tasks::Task& task = ts_[i];
        std::set<Cycles> probes{Cycles{0}, Cycles{1}, platform_.d_mem,
                                task.deadline / 2, task.deadline,
                                task.period, task.period + task.deadline,
                                2 * task.period + Cycles{3}};
        return {probes.begin(), probes.end()};
    }

    [[nodiscard]] std::vector<Cycles> isolated_responses() const
    {
        std::vector<Cycles> response;
        response.reserve(ts_.size());
        for (const tasks::Task& task : ts_.tasks()) {
            response.push_back(task.isolated_demand(platform_.d_mem));
        }
        return response;
    }

    void check_structure()
    {
        for (std::size_t i = 0; i < ts_.size(); ++i) {
            const tasks::Task& task = ts_[i];
            require("structure.footprints",
                    task.ucb.is_subset_of(task.ecb) &&
                        task.pcb.is_subset_of(task.ecb) &&
                        task.ecb.universe() == ts_.cache_sets() &&
                        task.ucb.universe() == ts_.cache_sets() &&
                        task.pcb.universe() == ts_.cache_sets(),
                    [&] {
                        return "task " + task.name +
                               ": UCB/PCB not contained in ECB or mask "
                               "universe differs from the cache";
                    });
            require("structure.demand",
                    task.pd >= Cycles{0} && task.md >= AccessCount{0} &&
                        task.md_residual >= AccessCount{0} &&
                        task.md_residual <= task.md,
                    [&] {
                        std::ostringstream out;
                        out << "task " << task.name << ": PD=" << task.pd
                            << " MD=" << task.md
                            << " MDr=" << task.md_residual;
                        return out.str();
                    });
            require("structure.windows",
                    task.period > Cycles{0} && task.deadline > Cycles{0} &&
                        task.deadline <= task.period &&
                        task.jitter >= Cycles{0} &&
                        task.jitter + task.deadline <= task.period &&
                        task.core < ts_.num_cores(),
                    [&] {
                        std::ostringstream out;
                        out << "task " << task.name << ": T=" << task.period
                            << " D=" << task.deadline
                            << " J=" << task.jitter
                            << " core=" << task.core;
                        return out.str();
                    });
        }
    }

    void check_demand()
    {
        for (std::size_t i = 0; i < ts_.size(); ++i) {
            AccessCount previous = oracle_.md_hat(i, 0);
            require("demand.md_hat_monotone", previous >= AccessCount{0}, [&] {
                return "task " + ts_[i].name + ": MD-hat(0) negative";
            });
            for (std::int64_t n = 1; n <= options_.max_demand_jobs; ++n) {
                const AccessCount value = oracle_.md_hat(i, n);
                require("demand.md_hat_dominance",
                        value <= n * ts_[i].md, [&] {
                            std::ostringstream out;
                            out << "task " << ts_[i].name << ": MD-hat(" << n
                                << ")=" << value << " > n*MD="
                                << n * ts_[i].md;
                            return out.str();
                        });
                require("demand.md_hat_monotone", value >= previous, [&] {
                    std::ostringstream out;
                    out << "task " << ts_[i].name << ": MD-hat(" << n
                        << ")=" << value << " < MD-hat(" << n - 1
                        << ")=" << previous;
                    return out.str();
                });
                previous = value;
            }
            for (std::int64_t m = 1; m <= options_.max_demand_jobs / 2;
                 ++m) {
                const std::int64_t n = options_.max_demand_jobs - m;
                require("demand.md_hat_subadditive",
                        oracle_.md_hat(i, m + n) <=
                            oracle_.md_hat(i, m) + oracle_.md_hat(i, n),
                        [&] {
                            std::ostringstream out;
                            out << "task " << ts_[i].name << ": MD-hat("
                                << m + n << ") > MD-hat(" << m
                                << ") + MD-hat(" << n << ")";
                            return out.str();
                        });
            }
        }
    }

    void check_tables()
    {
        const AccessCount limit = util::accesses_from_blocks(ts_.cache_sets());
        for (std::size_t i = 0; i < ts_.size(); ++i) {
            AccessCount previous_cpro{0};
            for (std::size_t j = 0; j < ts_.size(); ++j) {
                const AccessCount g = oracle_.gamma(i, j);
                require("tables.gamma_shape",
                        g >= AccessCount{0} && g <= limit &&
                            (j < i || g == AccessCount{0}),
                        [&] {
                            std::ostringstream out;
                            out << "gamma(" << i << "," << j << ")=" << g
                                << " outside [0," << limit
                                << "] or nonzero without a hp preempter";
                            return out.str();
                        });
                if (i > 0) {
                    require("tables.gamma_shape",
                            oracle_.gamma(i - 1, j) <= g ||
                                j >= i - 1, [&] {
                                std::ostringstream out;
                                out << "gamma(" << i - 1 << "," << j
                                    << ") > gamma(" << i << "," << j
                                    << "): row not monotone in the "
                                       "analysis level";
                                return out.str();
                            });
                }
            }
            const AccessCount pcb_i =
                util::accesses_from_blocks(ts_[i].pcb.popcount());
            for (std::size_t level = 0; level < ts_.size(); ++level) {
                const AccessCount overlap = oracle_.cpro_overlap(i, level);
                require("tables.cpro_shape",
                        overlap >= AccessCount{0} && overlap <= pcb_i &&
                            overlap >= previous_cpro,
                        [&] {
                            std::ostringstream out;
                            out << "cpro_overlap(" << i << "," << level
                                << ")=" << overlap << " outside [0,|PCB|="
                                << pcb_i << "] or decreasing in the level";
                            return out.str();
                        });
                previous_cpro = overlap;
            }
            previous_cpro = AccessCount{0};
            for (std::size_t s = 0; s < ts_.size(); ++s) {
                const AccessCount pair = oracle_.pair_overlap(i, s);
                const bool same_core = ts_[s].core == ts_[i].core && s != i;
                require("tables.cpro_shape",
                        pair >= AccessCount{0} && pair <= pcb_i &&
                            (same_core || pair == AccessCount{0}),
                        [&] {
                            std::ostringstream out;
                            out << "pair_overlap(" << i << "," << s
                                << ")=" << pair
                                << " invalid (cross-core or out of range)";
                            return out.str();
                        });
            }
        }
    }

    void check_bus_bounds()
    {
        const std::vector<Cycles> response = isolated_responses();
        const AnalysisConfig aware =
            make_config(BusPolicy::kFixedPriority, true);
        const AnalysisConfig baseline =
            make_config(BusPolicy::kFixedPriority, false);

        for (std::size_t i = 0; i < ts_.size(); ++i) {
            AccessCount previous_aware{-1};
            AccessCount previous_plain{-1};
            for (const Cycles t : probe_windows(i)) {
                const AccessCount hat = oracle_.bas(aware, i, t);
                const AccessCount plain = oracle_.bas(baseline, i, t);
                require("lemma1.bas_dominance", hat <= plain, [&] {
                    std::ostringstream out;
                    out << "task " << ts_[i].name << " t=" << t
                        << ": BAS-hat=" << hat << " > BAS=" << plain;
                    return out.str();
                });
                require("bounds.bas_monotone",
                        hat >= previous_aware && plain >= previous_plain,
                        [&] {
                            std::ostringstream out;
                            out << "task " << ts_[i].name << " t=" << t
                                << ": BAS decreased while the window grew";
                            return out.str();
                        });
                previous_aware = hat;
                previous_plain = plain;

                for (std::size_t core = 0; core < ts_.num_cores(); ++core) {
                    if (core == ts_[i].core) {
                        continue;
                    }
                    const AccessCount bao_hat =
                        oracle_.bao(aware, core, i, t, response);
                    const AccessCount bao_plain =
                        oracle_.bao(baseline, core, i, t, response);
                    require("lemma2.bao_dominance", bao_hat <= bao_plain,
                            [&] {
                                std::ostringstream out;
                                out << "task " << ts_[i].name << " core="
                                    << core << " t=" << t << ": BAO-hat="
                                    << bao_hat << " > BAO=" << bao_plain;
                                return out.str();
                            });
                }

                for (const BusPolicy policy : options_.policies) {
                    const AnalysisConfig cfg_aware =
                        make_config(policy, true);
                    const AnalysisConfig cfg_plain =
                        make_config(policy, false);
                    const AccessCount bat_aware =
                        oracle_.bat(cfg_aware, i, t, response);
                    const AccessCount bat_plain =
                        oracle_.bat(cfg_plain, i, t, response);
                    require("bat.dominates_bas",
                            bat_aware >= oracle_.bas(cfg_aware, i, t), [&] {
                                std::ostringstream out;
                                out << "task " << ts_[i].name << " "
                                    << policy_tag(policy) << " t=" << t
                                    << ": BAT=" << bat_aware
                                    << " below its own BAS term";
                                return out.str();
                            });
                    require("bat.persistence_dominance",
                            bat_aware <= bat_plain, [&] {
                                std::ostringstream out;
                                out << "task " << ts_[i].name << " "
                                    << policy_tag(policy) << " t=" << t
                                    << ": BAT-hat=" << bat_aware
                                    << " > BAT=" << bat_plain;
                                return out.str();
                            });
                }
                const AnalysisConfig perfect =
                    make_config(BusPolicy::kPerfect, true);
                require("bat.dominates_bas",
                        oracle_.bat(perfect, i, t, response) ==
                            oracle_.bas(perfect, i, t),
                        [&] {
                            std::ostringstream out;
                            out << "task " << ts_[i].name << " t=" << t
                                << ": perfect-bus BAT differs from BAS";
                            return out.str();
                        });
            }
        }
    }

    void check_wcrt()
    {
        for (const BusPolicy policy : options_.policies) {
            const AnalysisConfig aware = make_config(policy, true);
            const AnalysisConfig baseline = make_config(policy, false);
            const analysis::WcrtResult result_aware = oracle_.wcrt(aware);
            const analysis::WcrtResult result_plain = oracle_.wcrt(baseline);

            if (result_aware.schedulable) {
                check_fixed_point(aware, result_aware, policy);
                wcrt_results_.emplace_back(policy, result_aware);
            }
            if (result_plain.schedulable) {
                check_fixed_point(baseline, result_plain, policy);
            }

            require("wcrt.persistence_dominance",
                    !result_plain.schedulable || result_aware.schedulable,
                    [&] {
                        return policy_tag(policy) +
                               ": baseline schedulable but "
                               "persistence-aware analysis rejects the set";
                    });
            if (result_plain.schedulable && result_aware.schedulable) {
                for (std::size_t i = 0; i < ts_.size(); ++i) {
                    require("wcrt.persistence_dominance",
                            result_aware.response[i] <=
                                result_plain.response[i],
                            [&] {
                                std::ostringstream out;
                                out << policy_tag(policy) << " task "
                                    << ts_[i].name << ": R-hat="
                                    << result_aware.response[i]
                                    << " > R=" << result_plain.response[i];
                                return out.str();
                            });
                }
            }
        }
    }

    void check_fixed_point(const AnalysisConfig& config,
                           const analysis::WcrtResult& result,
                           BusPolicy policy)
    {
        for (std::size_t i = 0; i < ts_.size(); ++i) {
            const tasks::Task& task = ts_[i];
            const Cycles r = result.response[i];
            require("wcrt.response_bounds",
                    r >= task.isolated_demand(platform_.d_mem) &&
                        r <= task.effective_deadline(),
                    [&] {
                        std::ostringstream out;
                        out << policy_tag(policy) << " task " << task.name
                            << ": R=" << r << " outside [isolated demand="
                            << task.isolated_demand(platform_.d_mem)
                            << ", D-J=" << task.effective_deadline() << "]";
                        return out.str();
                    });

            // Re-evaluate the Eq. (19) right-hand side at the reported
            // fixed point; a sound solver output must satisfy rhs(R) <= R.
            Cycles rhs = task.pd;
            for (const std::size_t j : ts_.tasks_on_core(task.core)) {
                if (j >= i) {
                    break;
                }
                rhs += util::ceil_div(r, ts_[j].period) * ts_[j].pd;
            }
            rhs += oracle_.bat(config, i, r, result.response) *
                   platform_.d_mem;
            require("wcrt.fixed_point", rhs <= r, [&] {
                std::ostringstream out;
                out << policy_tag(policy) << " task " << task.name
                    << ": rhs(R)=" << rhs << " > R=" << r
                    << " (reported value is not a fixed point)";
                return out.str();
            });
        }
    }

    // Estimated simulator event count over a horizon: one release plus one
    // event per memory access per job of every task.
    [[nodiscard]] std::int64_t estimated_sim_events(Cycles horizon) const
    {
        std::int64_t total = 0;
        for (const tasks::Task& task : ts_.tasks()) {
            total +=
                (horizon / task.period + 1) * (util::to_scalar(task.md) + 2);
        }
        return total;
    }

    void check_simulation()
    {
        Cycles max_period{0};
        Cycles min_period{std::numeric_limits<std::int64_t>::max()};
        for (const tasks::Task& task : ts_.tasks()) {
            max_period = std::max(max_period, task.period);
            min_period = std::min(min_period, task.period);
        }
        // Shrink the horizon until the estimated event count fits the
        // budget (see CheckOptions::sim_event_budget); never below one
        // period of the shortest task so at least some jobs complete.
        Cycles horizon = options_.sim_horizon_periods * max_period;
        while (horizon / 2 >= min_period &&
               estimated_sim_events(horizon) > options_.sim_event_budget) {
            horizon = horizon / 2;
        }
        for (const auto& [policy, result] : wcrt_results_) {
            if (policy == BusPolicy::kPerfect) {
                continue;
            }
            sim::SimConfig sim_config;
            sim_config.policy = policy;
            sim_config.horizon = horizon;
            sim_config.stop_on_deadline_miss = false;
            const sim::SimResult observed = oracle_.simulate(sim_config);
            for (std::size_t i = 0; i < ts_.size(); ++i) {
                // The analytical bound is measured from the release; a job
                // released J late may still observe R + J from its arrival.
                const Cycles bound = result.response[i] + ts_[i].jitter;
                require("sim.response_soundness",
                        observed.max_response[i] <= bound, [&] {
                            std::ostringstream out;
                            out << policy_tag(policy) << " task "
                                << ts_[i].name << ": observed response "
                                << observed.max_response[i] << " > bound "
                                << bound;
                            return out.str();
                        });
            }
        }
    }

    const AnalysisOracle& oracle_;
    const CheckOptions& options_;
    const tasks::TaskSet& ts_;
    const PlatformConfig& platform_;
    CheckResult result_;
    // Schedulable persistence-aware WCRT results per policy, reused by the
    // simulation cross-check.
    std::vector<std::pair<BusPolicy, analysis::WcrtResult>> wcrt_results_;
};

} // namespace

CheckResult check_task_set(const AnalysisOracle& oracle,
                           const CheckOptions& options)
{
    CPA_SCOPED_TIMER("check.task_set");
    Checker checker(oracle, options);
    return checker.run();
}

CheckResult check_task_set(const tasks::TaskSet& ts,
                           const PlatformConfig& platform,
                           const CheckOptions& options)
{
    const AnalysisOracle oracle(ts, platform, options.crpd);
    return check_task_set(oracle, options);
}

} // namespace cpa::check
