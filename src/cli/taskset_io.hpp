// Task-set file format: the interchange format of the `cpa` command-line
// tool. Line oriented, `#` comments, one `platform` line followed by one
// `task` line per task (file order = priority order unless the platform
// line says otherwise):
//
//   # engine controller
//   platform cores=4 cache_sets=256 d_mem_us=5 slot_size=2 priority=file
//   task ctrl core=0 pd=1000 md=20 mdr=4 period=100000 deadline=80000
//        ecb=0-19 ucb=0-15 pcb=0-19          (one task per line in the file)
//
// Fields:
//   platform: cores, cache_sets, d_mem_us (or d_mem_cycles), slot_size,
//             priority = file | dm | rm  (dm/rm re-sort by deadline/period)
//   task:     name is the first token; core, pd, md, mdr, period are
//             required; deadline defaults to the period; jitter defaults to 0;
//             ecb/ucb/pcb are
//             comma-separated set indices and inclusive ranges ("0-19,42").
// Optional shared-L2 extension (src/analysis/multilevel.hpp): the platform
// line may carry `l2_sets=N` and `d_l2_us=X` (or `d_l2_cycles`); each task
// line may then carry `ecb2=/pcb2=` ranges over the L2 sets and `mdr2=N`
// (bus demand with both cache levels warm, defaults to mdr). L2 footprints
// are positional, so `priority=file` is required when they are present.
#pragma once

#include "analysis/config.hpp"
#include "analysis/multilevel.hpp"
#include "tasks/task.hpp"

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace cpa::cli {

struct ParsedSystem {
    analysis::PlatformConfig platform;
    tasks::TaskSet ts{1, 1}; // replaced by the parser
    // Present iff the platform line declares an L2; then l2_footprints has
    // one entry per task, in task order.
    std::optional<analysis::L2Config> l2;
    std::vector<analysis::L2Footprint> l2_footprints;
};

// Parses a task-set description; throws std::runtime_error with a
// line-numbered message on malformed input. The returned set is validated.
[[nodiscard]] ParsedSystem parse_task_set(std::istream& in);

[[nodiscard]] ParsedSystem parse_task_set_file(const std::string& path);

// Writes the system in the same format (round-trips through
// parse_task_set). Priority mode is emitted as "file" since the set is
// already in priority order.
void write_task_set(std::ostream& out, const analysis::PlatformConfig& platform,
                    const tasks::TaskSet& ts);

} // namespace cpa::cli
