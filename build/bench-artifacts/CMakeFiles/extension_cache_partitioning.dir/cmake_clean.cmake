file(REMOVE_RECURSE
  "../bench/extension_cache_partitioning"
  "../bench/extension_cache_partitioning.pdb"
  "CMakeFiles/extension_cache_partitioning.dir/extension_cache_partitioning.cpp.o"
  "CMakeFiles/extension_cache_partitioning.dir/extension_cache_partitioning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_cache_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
