# Empty compiler generated dependencies file for fig3c_cache_size.
# This may be replaced when dependencies are built.
