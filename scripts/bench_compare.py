#!/usr/bin/env python3
"""Perf-trajectory regression gate: compare a bench run against a baseline.

Usage:
    bench_compare.py BASELINE CURRENT [--wall-tolerance 0.5]

BASELINE and CURRENT are each either a consolidated history entry written
by bench_history.py (one JSON file with a "benches" map) or a directory of
raw BENCH_*.json reports. Every bench present in the baseline must also be
present in the current run.

Two classes of comparison, matching the determinism contract of the trial
engine (docs/architecture.md):

  HARD GATE (any mismatch fails the run, exit 1):
    * metrics.counters          — exact equality
    * metrics.gauges            — exact equality
    * metrics.timers.*.count    — exact equality (total_ns is wall clock)
    * metrics.histograms counts — exact equality for every histogram
    * metrics.histograms values — exact equality for histograms whose name
      does NOT end in "_ns" (iteration-count distributions are
      deterministic; wall-clock latency histograms are not)

  ADVISORY (reported, never fails — wall clock is noisy on shared CI):
    * total_seconds / elapsed_ms exceeding baseline * (1 + tolerance)
    * per-timer total_ns exceeding the same threshold

The advisory threshold defaults to 0.5 (50% slower than baseline before a
warning prints); tune with --wall-tolerance. Exit 0 when the hard gate
passes, 1 otherwise. Stdlib only.
"""

import argparse
import json
import sys
from pathlib import Path

HISTOGRAM_VALUE_KEYS = ("sum", "min", "max", "p50", "p90", "p99")


def load_run(path):
    """Returns {bench name: report} from a history entry or a directory."""
    path = Path(path)
    if path.is_dir():
        reports = {}
        for report_path in sorted(path.glob("BENCH_*.json")):
            with open(report_path) as handle:
                report = json.load(handle)
            reports[report["bench"]] = report
        return reports
    with open(path) as handle:
        entry = json.load(handle)
    if "benches" in entry:
        return entry["benches"]
    return {entry["bench"]: entry}


class Gate:
    def __init__(self, wall_tolerance):
        self.wall_tolerance = wall_tolerance
        self.failures = []
        self.advisories = []

    def hard(self, where, base, cur):
        if base != cur:
            self.failures.append(f"{where}: baseline {base!r}, got {cur!r}")

    def wall(self, where, base, cur):
        if base is None or cur is None:
            return
        threshold = base * (1.0 + self.wall_tolerance)
        if base > 0 and cur > threshold:
            self.advisories.append(
                f"{where}: {cur} vs baseline {base} "
                f"(+{(cur / base - 1.0) * 100.0:.0f}%, advisory only)")

    def compare_bench(self, name, base, cur):
        where = f"[{name}]"
        base_metrics = base.get("metrics", {})
        cur_metrics = cur.get("metrics", {})

        for group in ("counters", "gauges"):
            self.compare_int_map(f"{where} {group}",
                                 base_metrics.get(group, {}),
                                 cur_metrics.get(group, {}))

        base_timers = base_metrics.get("timers", {})
        cur_timers = cur_metrics.get("timers", {})
        for timer in sorted(set(base_timers) | set(cur_timers)):
            tw = f"{where} timers[{timer!r}]"
            if timer not in cur_timers:
                self.failures.append(f"{tw}: missing from current run")
                continue
            if timer not in base_timers:
                self.failures.append(f"{tw}: not in baseline (new metric — "
                                     "refresh the baseline)")
                continue
            self.hard(f"{tw}.count", base_timers[timer].get("count"),
                      cur_timers[timer].get("count"))
            self.wall(f"{tw}.total_ns", base_timers[timer].get("total_ns"),
                      cur_timers[timer].get("total_ns"))

        base_hists = base_metrics.get("histograms", {})
        cur_hists = cur_metrics.get("histograms", {})
        for hist in sorted(set(base_hists) | set(cur_hists)):
            hw = f"{where} histograms[{hist!r}]"
            if hist not in cur_hists:
                self.failures.append(f"{hw}: missing from current run")
                continue
            if hist not in base_hists:
                self.failures.append(f"{hw}: not in baseline (new metric — "
                                     "refresh the baseline)")
                continue
            self.hard(f"{hw}.count", base_hists[hist].get("count"),
                      cur_hists[hist].get("count"))
            if not hist.endswith("_ns"):
                for key in HISTOGRAM_VALUE_KEYS:
                    self.hard(f"{hw}.{key}", base_hists[hist].get(key),
                              cur_hists[hist].get(key))

        self.wall(f"{where} elapsed_ms", base.get("elapsed_ms"),
                  cur.get("elapsed_ms"))
        self.wall(f"{where} total_seconds", base.get("total_seconds"),
                  cur.get("total_seconds"))

    def compare_int_map(self, where, base, cur):
        for key in sorted(set(base) | set(cur)):
            if key not in cur:
                self.failures.append(f"{where}[{key!r}]: missing from "
                                     "current run")
            elif key not in base:
                self.failures.append(f"{where}[{key!r}]: not in baseline "
                                     "(new metric — refresh the baseline)")
            else:
                self.hard(f"{where}[{key!r}]", base[key], cur[key])


def main(argv):
    parser = argparse.ArgumentParser(
        prog="bench_compare",
        description="Gate the current bench run against a baseline.")
    parser.add_argument("baseline", help="history entry file or bench dir")
    parser.add_argument("current", help="history entry file or bench dir")
    parser.add_argument("--wall-tolerance", type=float, default=0.5,
                        help="advisory wall-clock slowdown threshold "
                             "(fraction, default 0.5 = +50%%)")
    args = parser.parse_args(argv[1:])

    try:
        baseline = load_run(args.baseline)
        current = load_run(args.current)
    except (OSError, ValueError, KeyError) as error:
        print(f"bench_compare: cannot load runs: {error!r}", file=sys.stderr)
        return 1
    if not baseline:
        print(f"bench_compare: no benches in baseline {args.baseline}",
              file=sys.stderr)
        return 1

    gate = Gate(args.wall_tolerance)
    for name in sorted(baseline):
        if name not in current:
            gate.failures.append(f"[{name}]: bench missing from current run")
            continue
        gate.compare_bench(name, baseline[name], current[name])
    for name in sorted(set(current) - set(baseline)):
        print(f"bench_compare: note: [{name}] not in baseline (skipped)")

    for line in gate.advisories:
        print(f"bench_compare: advisory: {line}")
    if gate.failures:
        for line in gate.failures:
            print(f"bench_compare: FAIL: {line}", file=sys.stderr)
        print(f"bench_compare: {len(gate.failures)} deterministic "
              "regression(s) against the baseline", file=sys.stderr)
        return 1
    print(f"bench_compare: {len(baseline)} bench(es) match the baseline "
          f"({len(gate.advisories)} wall-clock advisory/ies)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
