# Empty compiler generated dependencies file for fig3d_slot_size.
# This may be replaced when dependencies are built.
