// Fixture: entropy comes from the experiment seed, never the OS.
#include "util/rng.hpp"

#include <cstdint>

std::uint64_t entropy(std::uint64_t base_seed, std::uint64_t trial)
{
    return cpa::util::seed_for(base_seed, trial);
}
