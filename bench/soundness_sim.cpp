// Cross-validation bench (not a paper artifact): compares the analytical
// WCRT bounds against response times observed in the discrete-event
// simulator on random task sets, per bus policy. Reports the bound/observed
// ratio (tightness) and asserts soundness (observed <= bound) — the
// simulator-level counterpart of the paper's "safe upper bound" claims.
#include "analysis/wcrt.hpp"
#include "benchdata/generator.hpp"
#include "obs/parallel.hpp"
#include "sim/simulator.hpp"

#include "common.hpp"

#include <algorithm>
#include <iostream>
#include <vector>

int main()
{
    using namespace cpa;
    bench::BenchReport bench_report("soundness_sim");
    using analysis::BusPolicy;

    const std::size_t sets_per_policy = experiments::task_sets_from_env(40);
    util::ThreadPool threads(bench_report.jobs());

    analysis::PlatformConfig platform;
    platform.num_cores = 2;
    platform.cache_sets = 128;
    platform.d_mem = util::cycles_from_microseconds(util::Microseconds{5});
    platform.slot_size = 2;

    benchdata::GenerationConfig generation;
    generation.num_cores = 2;
    generation.tasks_per_core = 4;
    generation.cache_sets = 128;
    generation.per_core_utilization = 0.3;
    const auto pool = benchdata::derive_all(
        benchdata::full_benchmark_table(), generation.cache_sets);

    util::TextTable table({"policy", "persistence", "sets checked",
                           "violations", "mean bound/observed",
                           "max observed ratio"});

    for (const BusPolicy policy :
         {BusPolicy::kFixedPriority, BusPolicy::kRoundRobin,
          BusPolicy::kTdma}) {
        for (const bool persistence : {true, false}) {
            // Per-trial slots, reduced in index order below, so the table is
            // identical whatever the pool's schedule. Trial n draws from
            // seed_for(2020, n) for every policy/persistence combination —
            // the same task sets across all six rows, as before.
            struct TrialOutcome {
                bool checked = false;
                std::size_t violations = 0;
                double ratio_sum = 0.0;
                double ratio_max = 0.0;
                std::size_t ratio_count = 0;
            };
            std::vector<TrialOutcome> outcomes(sets_per_policy);

            obs::run_indexed_trials(threads, sets_per_policy,
                                    [&](std::size_t n) {
                TrialOutcome& outcome = outcomes[n];
                util::Rng child(util::seed_for(2020, n));
                const tasks::TaskSet ts =
                    benchdata::generate_task_set(child, generation, pool);

                analysis::AnalysisConfig config;
                config.policy = policy;
                config.persistence_aware = persistence;
                const auto wcrt =
                    analysis::compute_wcrt(ts, platform, config);
                if (!wcrt.schedulable) {
                    return;
                }
                outcome.checked = true;

                util::Cycles max_period{0};
                for (const auto& task : ts.tasks()) {
                    max_period = std::max(max_period, task.period);
                }
                sim::SimConfig sim_config;
                sim_config.policy = policy;
                sim_config.horizon = 3 * max_period;
                const auto observed = sim::simulate(ts, platform, sim_config);

                for (std::size_t i = 0; i < ts.size(); ++i) {
                    if (observed.max_response[i] > wcrt.response[i]) {
                        ++outcome.violations;
                    }
                    if (observed.max_response[i] > util::Cycles{0}) {
                        const double ratio =
                            util::to_double(wcrt.response[i]) /
                            util::to_double(observed.max_response[i]);
                        outcome.ratio_sum += ratio;
                        outcome.ratio_max = std::max(
                            outcome.ratio_max,
                            util::to_double(observed.max_response[i]) /
                                util::to_double(wcrt.response[i]));
                        ++outcome.ratio_count;
                    }
                }
            });

            std::size_t checked = 0;
            std::size_t violations = 0;
            double ratio_sum = 0.0;
            double ratio_max = 0.0;
            std::size_t ratio_count = 0;
            for (const TrialOutcome& outcome : outcomes) {
                checked += outcome.checked ? 1 : 0;
                violations += outcome.violations;
                ratio_sum += outcome.ratio_sum;
                ratio_max = std::max(ratio_max, outcome.ratio_max);
                ratio_count += outcome.ratio_count;
            }
            table.add_row(
                {analysis::to_string(policy), persistence ? "yes" : "no",
                 std::to_string(checked), std::to_string(violations),
                 ratio_count
                     ? util::TextTable::num(
                           ratio_sum / static_cast<double>(ratio_count), 2)
                     : "-",
                 util::TextTable::num(ratio_max, 3)});
        }
    }

    std::cout << "== Soundness: simulated response vs analytical WCRT ==\n"
              << "(violations must be 0; bound/observed > 1 quantifies "
                 "analysis pessimism)\n";
    table.print(std::cout);
    return 0;
}
