#!/usr/bin/env python3
"""Validate BENCH_*.json run reports emitted by the bench binaries.

Usage:
    check_bench_json.py FILE_OR_DIR [FILE_OR_DIR ...]

Directories are scanned (non-recursively) for BENCH_*.json. Every file must
be a single-line JSON object matching the RunReport schema documented in
docs/observability.md:

    schema_version : int == 2
    tool           : "bench"
    provenance     : {"version": str, "git_sha": str, "git_dirty": str,
                      "compiler": str, "build_type": str, "obs": bool,
                      "check": bool, "sanitize": str}
    bench          : non-empty string
    total_seconds  : number >= 0
    elapsed_ms     : int >= 0 (wall clock, for speedup trajectories)
    jobs           : int >= 1 (resolved worker count of the run)
    sections       : list of {"name": str, "seconds": number >= 0}
    metrics        : {"counters": {str: int},
                      "gauges": {str: int},
                      "timers": {str: {"total_ns": int >= 0,
                                       "count": int >= 0}},
                      "histograms": {str: {"count": int >= 0, "sum": int,
                                           "min": int, "max": int,
                                           "p50": int >= 0, "p90": int >= 0,
                                           "p99": int >= 0}}}

Histogram percentiles must be non-negative and ordered
(min <= p50 <= p90 <= p99 <= max when count > 0), and every bench report
must carry the "bench.total_ns" histogram (the BenchReport emitter always
injects it, even with metrics disabled).

Exit status 0 when every report validates, 1 otherwise. Stdlib only.
"""

import json
import math
import sys
from pathlib import Path

SCHEMA_VERSION = 2

HISTOGRAM_KEYS = ("count", "sum", "min", "max", "p50", "p90", "p99")
PROVENANCE_STRING_KEYS = ("version", "git_sha", "git_dirty", "compiler",
                          "build_type", "sanitize")
PROVENANCE_BOOL_KEYS = ("obs", "check")


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return False


def _reject_constant(token):
    # json.loads() happily parses NaN/Infinity/-Infinity (non-standard JSON);
    # a timing bug that divides by zero must not produce a "valid" report.
    raise ValueError(f"non-finite JSON constant {token}")


def check_number(path, value, what, minimum=None):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return fail(path, f"{what} must be a number, got {value!r}")
    if isinstance(value, float) and not math.isfinite(value):
        return fail(path, f"{what} must be finite, got {value!r}")
    if minimum is not None and value < minimum:
        return fail(path, f"{what} must be >= {minimum}, got {value!r}")
    return True


def check_int(path, value, what, minimum=None):
    if isinstance(value, bool) or not isinstance(value, int):
        return fail(path, f"{what} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        return fail(path, f"{what} must be >= {minimum}, got {value!r}")
    return True


def check_histogram(path, what, stat):
    if not isinstance(stat, dict):
        return fail(path, f"{what} must be an object, got {stat!r}")
    ok = True
    for key in HISTOGRAM_KEYS:
        if key not in stat:
            ok = fail(path, f"{what}.{key} missing")
    ok = check_int(path, stat.get("count", 0), f"{what}.count",
                   minimum=0) and ok
    for key in ("sum", "min", "max"):
        ok = check_int(path, stat.get(key, 0), f"{what}.{key}") and ok
    for key in ("p50", "p90", "p99"):
        # Negative percentiles would mean the estimator escaped the
        # observed-value envelope (all recorded samples are >= 0 here).
        ok = check_int(path, stat.get(key, 0), f"{what}.{key}",
                       minimum=0) and ok
    if ok and stat["count"] > 0:
        chain = [("min", stat["min"]), ("p50", stat["p50"]),
                 ("p90", stat["p90"]), ("p99", stat["p99"]),
                 ("max", stat["max"])]
        for (lo_name, lo), (hi_name, hi) in zip(chain, chain[1:]):
            if lo > hi:
                ok = fail(path, f"{what}: {lo_name} ({lo}) > "
                                f"{hi_name} ({hi})")
    return ok


def check_provenance(path, provenance):
    if not isinstance(provenance, dict):
        return fail(path,
                    f"provenance must be an object, got {provenance!r}")
    ok = True
    for key in PROVENANCE_STRING_KEYS:
        value = provenance.get(key)
        if not isinstance(value, str):
            ok = fail(path,
                      f"provenance.{key} must be a string, got {value!r}")
    for key in PROVENANCE_BOOL_KEYS:
        value = provenance.get(key)
        if not isinstance(value, bool):
            ok = fail(path,
                      f"provenance.{key} must be a boolean, got {value!r}")
    return ok


def check_metrics(path, metrics, require_bench_histograms=True):
    ok = True
    if not isinstance(metrics, dict):
        return fail(path, f"metrics must be an object, got {metrics!r}")
    for group in ("counters", "gauges", "timers", "histograms"):
        if group not in metrics:
            ok = fail(path, f"metrics.{group} missing")
    for group in ("counters", "gauges"):
        for name, value in metrics.get(group, {}).items():
            ok = check_int(path, value, f"metrics.{group}[{name!r}]") and ok
    for name, stat in metrics.get("timers", {}).items():
        what = f"metrics.timers[{name!r}]"
        if not isinstance(stat, dict):
            ok = fail(path, f"{what} must be an object, got {stat!r}")
            continue
        ok = check_int(path, stat.get("total_ns"), f"{what}.total_ns",
                       minimum=0) and ok
        ok = check_int(path, stat.get("count"), f"{what}.count",
                       minimum=0) and ok
    histograms = metrics.get("histograms")
    if isinstance(histograms, dict):
        for name, stat in histograms.items():
            ok = check_histogram(path, f"metrics.histograms[{name!r}]",
                                 stat) and ok
        if require_bench_histograms and "bench.total_ns" not in histograms:
            ok = fail(path, "metrics.histograms['bench.total_ns'] missing "
                            "(every bench report carries its wall-time "
                            "histogram)")
    elif "histograms" in metrics:
        ok = fail(path,
                  f"metrics.histograms must be an object, got {histograms!r}")
    return ok


def check_report(path):
    try:
        text = path.read_text()
        report = json.loads(text, parse_constant=_reject_constant)
    except (OSError, ValueError) as error:
        # ValueError covers both JSONDecodeError (its subclass) and the
        # NaN/Infinity rejection above.
        return fail(path, f"unreadable: {error}")

    if text.count("\n") > 1 or (text.count("\n") == 1
                                and not text.endswith("\n")):
        return fail(path, "report must be a single JSON line")
    if not isinstance(report, dict):
        return fail(path, "top level must be a JSON object")

    ok = True
    if report.get("schema_version") != SCHEMA_VERSION:
        ok = fail(
            path, f"schema_version must be {SCHEMA_VERSION}, "
            f"got {report.get('schema_version')!r}")
    if report.get("tool") != "bench":
        ok = fail(path, f"tool must be 'bench', got {report.get('tool')!r}")
    if "provenance" not in report:
        ok = fail(path, "provenance missing")
    else:
        ok = check_provenance(path, report["provenance"]) and ok
    bench = report.get("bench")
    if not isinstance(bench, str) or not bench:
        ok = fail(path, f"bench must be a non-empty string, got {bench!r}")
    elif path.name != f"BENCH_{bench}.json":
        ok = fail(path, f"file name does not match bench name {bench!r}")
    ok = check_number(path, report.get("total_seconds"), "total_seconds",
                      minimum=0) and ok
    ok = check_int(path, report.get("elapsed_ms"), "elapsed_ms",
                   minimum=0) and ok
    ok = check_int(path, report.get("jobs"), "jobs", minimum=1) and ok

    sections = report.get("sections")
    if not isinstance(sections, list):
        ok = fail(path, f"sections must be a list, got {sections!r}")
    else:
        for index, section in enumerate(sections):
            what = f"sections[{index}]"
            if not isinstance(section, dict):
                ok = fail(path, f"{what} must be an object, got {section!r}")
                continue
            name = section.get("name")
            if not isinstance(name, str) or not name:
                ok = fail(path,
                          f"{what}.name must be a non-empty string, "
                          f"got {name!r}")
            ok = check_number(path, section.get("seconds"),
                             f"{what}.seconds", minimum=0) and ok

    if "metrics" not in report:
        ok = fail(path, "metrics missing")
    else:
        ok = check_metrics(path, report["metrics"]) and ok
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2

    files = []
    for arg in argv[1:]:
        path = Path(arg)
        if path.is_dir():
            files.extend(sorted(path.glob("BENCH_*.json")))
        else:
            files.append(path)
    if not files:
        print("check_bench_json: no BENCH_*.json files found",
              file=sys.stderr)
        return 1

    bad = 0
    for path in files:
        if check_report(path):
            print(f"{path}: ok")
        else:
            bad += 1
    if bad:
        print(f"check_bench_json: {bad}/{len(files)} report(s) invalid",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
