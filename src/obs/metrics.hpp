// Process-wide metrics registry: monotonically increasing counters, gauges,
// and wall-clock timers, addressed by dotted names ("wcrt.inner_iterations",
// "bat.fp.calls", ...).
//
// Design constraints (see docs/observability.md for the metric catalog):
//  * Hot-path friendly: increments are relaxed atomics on references that
//    call sites cache once (obs.hpp macros), so an enabled counter costs one
//    atomic add and a disabled one a single predictable branch.
//  * Stable references: metric objects are heap-allocated and never removed,
//    so a `Counter&` captured in a function-local static stays valid for the
//    process lifetime. `reset()` zeroes values without invalidating anything.
//  * Registration is mutex-protected (cold path only).
#pragma once

#include "util/thread_safety.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace cpa::obs {

// Global runtime switch for metric recording. Off by default; flipped on by
// the CLI (--metrics-out), bench::BenchReport, or tests.
[[nodiscard]] bool metrics_enabled() noexcept;
void set_metrics_enabled(bool enabled) noexcept;

class Counter {
public:
    void add(std::int64_t delta) noexcept
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::int64_t> value_{0};
};

class Gauge {
public:
    void set(std::int64_t value) noexcept
    {
        value_.store(value, std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::int64_t> value_{0};
};

// Accumulated wall-clock time: total nanoseconds across all recorded scopes
// plus how many scopes contributed (so snapshots can derive a mean).
class Timer {
public:
    void record_ns(std::int64_t ns) noexcept
    {
        total_ns_.fetch_add(ns, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
    }
    // Merges a pre-aggregated contribution (a MetricsBuffer flush).
    void add(std::int64_t total_ns, std::int64_t count) noexcept
    {
        total_ns_.fetch_add(total_ns, std::memory_order_relaxed);
        count_.fetch_add(count, std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t total_ns() const noexcept
    {
        return total_ns_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t count() const noexcept
    {
        return count_.load(std::memory_order_relaxed);
    }
    void reset() noexcept
    {
        total_ns_.store(0, std::memory_order_relaxed);
        count_.store(0, std::memory_order_relaxed);
    }

private:
    std::atomic<std::int64_t> total_ns_{0};
    std::atomic<std::int64_t> count_{0};
};

struct TimerStat {
    std::int64_t total_ns = 0;
    std::int64_t count = 0;
};

// Point-in-time copy of every registered metric, for reports.
struct MetricsSnapshot {
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, TimerStat> timers;
};

class MetricsRegistry {
public:
    // The process-wide registry used by the obs.hpp macros.
    [[nodiscard]] static MetricsRegistry& global();

    // Find-or-create; the returned reference is stable forever.
    [[nodiscard]] Counter& counter(std::string_view name)
        CPA_EXCLUDES(mutex_);
    [[nodiscard]] Gauge& gauge(std::string_view name) CPA_EXCLUDES(mutex_);
    [[nodiscard]] Timer& timer(std::string_view name) CPA_EXCLUDES(mutex_);

    [[nodiscard]] MetricsSnapshot snapshot() const CPA_EXCLUDES(mutex_);

    // Zeroes every metric value. Registered names (and references handed
    // out) survive, so call sites keep working across resets.
    void reset() CPA_EXCLUDES(mutex_);

private:
    mutable util::Mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
        CPA_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
        CPA_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_
        CPA_GUARDED_BY(mutex_);
};

// Single-thread staging area for metric events, used by the parallel trial
// engine (obs/parallel.hpp). While installed on a thread (ScopedMetricsBuffer
// / current_metrics_buffer), the obs.hpp macros deposit events here instead
// of in the global registry; the orchestrator later flushes one buffer per
// trial *in trial-index order*, so gauges (last-writer-wins) land exactly as
// a serial run would have written them. Not thread-safe by design — each
// buffer belongs to exactly one in-flight trial.
class MetricsBuffer {
public:
    void add_counter(std::string_view name, std::int64_t delta)
    {
        find_or_zero(counters_, name) += delta;
    }
    void set_gauge(std::string_view name, std::int64_t value)
    {
        find_or_zero(gauges_, name) = value;
        // Distinguishes "set to 0" from "never set": only touched gauges are
        // replayed into the registry.
    }
    void record_timer_ns(std::string_view name, std::int64_t ns)
    {
        TimerStat& stat = timers_
                              .try_emplace(std::string(name))
                              .first->second;
        stat.total_ns += ns;
        stat.count += 1;
    }

    [[nodiscard]] bool empty() const noexcept
    {
        return counters_.empty() && gauges_.empty() && timers_.empty();
    }

    // Replays the buffered events into the global registry and clears the
    // buffer. The caller sequences flushes (trial-index order) to keep
    // gauge values deterministic.
    void flush_to_global();

private:
    template <typename Map>
    static std::int64_t& find_or_zero(Map& map, std::string_view name)
    {
        auto it = map.find(name);
        if (it == map.end()) {
            it = map.emplace(std::string(name), 0).first;
        }
        return it->second;
    }

    std::map<std::string, std::int64_t, std::less<>> counters_;
    std::map<std::string, std::int64_t, std::less<>> gauges_;
    std::map<std::string, TimerStat, std::less<>> timers_;
};

// The buffer installed on the calling thread, or nullptr when metric events
// should go straight to the global registry (the default).
[[nodiscard]] MetricsBuffer* current_metrics_buffer() noexcept;

// RAII install/restore of a thread's metrics buffer.
class ScopedMetricsBuffer {
public:
    explicit ScopedMetricsBuffer(MetricsBuffer& buffer) noexcept;
    ~ScopedMetricsBuffer();
    ScopedMetricsBuffer(const ScopedMetricsBuffer&) = delete;
    ScopedMetricsBuffer& operator=(const ScopedMetricsBuffer&) = delete;

private:
    MetricsBuffer* previous_ = nullptr;
};

// RAII wall-clock scope feeding a Timer metric. Inactive (and skipping the
// clock reads) when metrics are disabled at construction time. Routes into
// the thread's MetricsBuffer when one is installed.
class ScopedTimer {
public:
    explicit ScopedTimer(std::string_view name)
    {
        if (metrics_enabled()) {
            if ((buffer_ = current_metrics_buffer()) != nullptr) {
                name_ = name;
            } else {
                timer_ = &MetricsRegistry::global().timer(name);
            }
            start_ = std::chrono::steady_clock::now();
        }
    }
    ~ScopedTimer()
    {
        if (timer_ == nullptr && buffer_ == nullptr) {
            return;
        }
        const auto elapsed = std::chrono::steady_clock::now() - start_;
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count();
        if (buffer_ != nullptr) {
            buffer_->record_timer_ns(name_, ns);
        } else {
            timer_->record_ns(ns);
        }
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    Timer* timer_ = nullptr;
    MetricsBuffer* buffer_ = nullptr;
    std::string name_; // only populated on the buffered path
    std::chrono::steady_clock::time_point start_{};
};

} // namespace cpa::obs
