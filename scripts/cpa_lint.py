#!/usr/bin/env python3
"""cpa-lint: project-specific static analysis for the CPA reproduction.

Generic clang-tidy cannot express the three disciplines this codebase
hand-enforces, so this tool checks them mechanically (stdlib only, no
third-party deps):

  unit pack      — the dimensional type system (util::Quantity / util::Id)
                   may only be unwrapped at the named conversion points of
                   src/util/units.hpp. Raw `.count()` / `.value()` calls and
                   integer-literal arithmetic on raw representations are
                   findings anywhere else.
  det pack       — worker-count determinism: no std::rand/srand/time-based
                   seeding, no std::random_device, no unordered containers
                   (iteration order leaks into reports), RNG engines seeded
                   through util::seed_for, and no shared-accumulator updates
                   or sequential RNG forks inside parallel_for_indexed /
                   run_indexed_trials bodies (the pre-sized-slot reduction
                   idiom is the only sanctioned shape).
  ovf pack       — overflow discipline in 64-bit cycle space: raw-rep
                   multiplication and narrowing casts of quantity
                   representations bypass the CPA_CHECKED_ARITH trapping
                   operators and are findings. (The build-side half of this
                   pack is -DCPA_CHECKED_ARITH=ON; see units.hpp.)
  layering pack  — folds scripts/check_layers.py in as a pass so one entry
                   point runs every structural check.

Backends: a tokenizer backend that always works (the container toolchain is
gcc-only) and a clang `-ast-dump=json` backend used when clang is available.
The tool never silently skips: if the requested backend is unavailable it
fails loudly. `--self-test` runs both backends over the fixture suite in
tests/lint_fixtures/ and requires them to agree.

Suppressions: `// cpa-lint: allow(<rule>): <reason>` on the offending line
or on a standalone comment line directly above it. The reason is mandatory;
a missing reason is itself a finding (meta.bad-suppression). File-level
exemptions live in scripts/cpa_lint_whitelist.txt (rule-glob + path-glob +
mandatory trailing comment).

Exit status: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import re
import shutil
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# ---------------------------------------------------------------------------
# Rule registry. Every rule has a stable id (findings, suppressions, the
# whitelist, and the docs catalog all key on it), the pack it belongs to,
# and a one-line rationale tied to the discipline that motivated it.

@dataclass(frozen=True)
class Rule:
    id: str
    pack: str
    rationale: str


RULES = [
    Rule("unit.raw-count", "unit",
         "Raw Quantity::count() outside units.hpp bypasses the named "
         "conversion points (PR 3's dimensional-safety contract)."),
    Rule("unit.raw-value", "unit",
         "Raw Id::value() outside units.hpp bypasses to_index(); swapped "
         "TaskId/CoreId subscripts become invisible again."),
    Rule("unit.literal-arith", "unit",
         "Integer-literal arithmetic on a raw representation re-creates the "
         "unnamed conversion factors units.hpp exists to eliminate."),
    Rule("det.banned-call", "det",
         "std::rand/srand/time seeds break worker-count determinism and "
         "golden-file reproducibility (PR 4)."),
    Rule("det.random-device", "det",
         "std::random_device is nondeterministic by definition; every "
         "stream must derive from the experiment seed."),
    Rule("det.unordered-container", "det",
         "unordered_{map,set} iteration order depends on libstdc++ details "
         "and hash seeding; iterating one into a RunReport breaks "
         "byte-identical golden transcripts."),
    Rule("det.unordered-iter", "det",
         "A ranged-for over an unordered container visits elements in "
         "hash-table order, so any result folded out of the loop body "
         "(sums, first-match, report rows) can change across libstdc++ "
         "versions or hash seeds; iterate a sorted view instead."),
    Rule("det.raw-seed", "det",
         "RNG engines must seed from util::seed_for / a *seed* value so "
         "per-trial streams depend only on (base_seed, trial_index)."),
    Rule("det.parallel-accum", "det",
         "A shared accumulator updated inside a parallel_for_indexed body "
         "makes results depend on thread interleaving; use the pre-sized "
         "slot + trial-index-order reduction idiom."),
    Rule("det.fork-in-parallel", "det",
         "Rng::fork() inside a parallel body re-creates the order-dependent "
         "sequential-fork scheme PR 4 removed; use util::seed_for."),
    Rule("det.wcrt-reference-loop", "det",
         "The Eq. (19) reference inner fixed point may only be constructed "
         "behind the WcrtEngine seam in wcrt.cpp; a hand-rolled copy "
         "elsewhere escapes the differential harness that pins the "
         "reference and incremental engines byte-identical."),
    Rule("ovf.raw-mul", "ovf",
         "Multiplying raw .count()/.value() representations sidesteps the "
         "CPA_CHECKED_ARITH trapping operators; Eq. 19 multiplies access "
         "counts by d_mem at scales where silent wrap-around is plausible."),
    Rule("ovf.narrowing-cast", "ovf",
         "Casting a 64-bit quantity representation to 32 bits or less "
         "truncates exactly where the analysis accumulates cycle values."),
    Rule("meta.bad-suppression", "meta",
         "allow() comments must carry a reason and name a known rule; a "
         "bare suppression is indistinguishable from a stale one."),
    Rule("layering.violation", "layering",
         "The module include graph must respect the DAG of "
         "docs/architecture.md (scripts/check_layers.py, folded in as a "
         "pass)."),
]
RULE_IDS = {r.id for r in RULES}

BANNED_CALLS = {"rand", "srand"}
# The reference Eq. (19) solver. Only src/analysis/wcrt.cpp (whitelisted)
# may define or call it; everything else selects an engine through
# AnalysisConfig::wcrt_engine so the differential harness covers it.
REFERENCE_WCRT_LOOP = "inner_fixed_point"
UNORDERED_CONTAINERS = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
}
RNG_ENGINES = {
    "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "ranlux24", "ranlux48", "knuth_b",
}
PARALLEL_ENTRY_POINTS = {"parallel_for_indexed", "run_indexed_trials"}
NARROW_TYPES = {
    "int", "unsigned", "short", "char", "int8_t", "uint8_t", "int16_t",
    "uint16_t", "int32_t", "uint32_t",
}
COMPOUND_ASSIGN_OPS = {"+=", "-=", "*=", "/="}


@dataclass
class Finding:
    rule: str
    path: str  # repo-relative, forward slashes
    line: int
    message: str
    suppressed: bool = False
    suppression_reason: str = ""

    def key(self):
        return (self.rule, self.path, self.line)


# ---------------------------------------------------------------------------
# Tokenizer backend: a small C++ lexer. Comments are captured separately
# (they drive suppressions for BOTH backends); strings/chars are skipped.

@dataclass(frozen=True)
class Token:
    kind: str  # ident | number | punct
    text: str
    line: int


MULTI_PUNCT = [
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "&&", "||", "++",
    "--",
]


def tokenize(text: str):
    """Returns (tokens, comments) where comments is [(line, text, standalone)]."""
    tokens: list[Token] = []
    comments: list[tuple[int, str, bool]] = []
    i, n, line = 0, len(text), 1
    line_has_code = False
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            line_has_code = False
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Preprocessor directives are not analyzed (so `#include
        # <unordered_map>` in a header shim never fires the det pack —
        # the clang backend only sees declarations, and the backends must
        # agree). Honors backslash continuations.
        if c == "#" and not line_has_code:
            while i < n:
                j = text.find("\n", i)
                j = n if j == -1 else j
                if text[i:j].rstrip().endswith("\\"):
                    line += 1
                    i = j + 1
                else:
                    break
            i = j if j == n else j
            continue
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j == -1 else j
            comments.append((line, text[i:j], not line_has_code))
            i = j
            continue
        if text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            body = text[i:j + 2]
            comments.append((line, body, not line_has_code))
            line += body.count("\n")
            i = j + 2
            continue
        if c == '"':
            # Raw string literals: R"delim( ... )delim"
            if tokens and tokens[-1].kind == "ident" and \
                    tokens[-1].text.endswith("R") and i > 0 and \
                    text[i - 1] == "R" or text.startswith('R"', i - 1):
                m = re.match(r'"([^(\s"]*)\(', text[i:])
                if m:
                    closer = ")" + m.group(1) + '"'
                    j = text.find(closer, i)
                    j = n - len(closer) if j == -1 else j
                    line += text.count("\n", i, j)
                    i = j + len(closer)
                    line_has_code = True
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                j += 1
            line += text.count("\n", i, j)
            i = j + 1
            line_has_code = True
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            i = j + 1
            line_has_code = True
            continue
        line_has_code = True
        if c.isalpha() or c == "_":
            m = re.match(r"[A-Za-z_]\w*", text[i:])
            tokens.append(Token("ident", m.group(0), line))
            i += m.end()
            continue
        if c.isdigit():
            m = re.match(r"(0[xX][0-9a-fA-F']+|[0-9][0-9a-fA-F'.xXeEpP+-]*)"
                         r"[uUlLzZfF]*", text[i:])
            tokens.append(Token("number", m.group(0), line))
            i += m.end()
            continue
        for p in MULTI_PUNCT:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += len(p)
                break
        else:
            tokens.append(Token("punct", c, line))
            i += 1
    return tokens, comments


ALLOW_RE = re.compile(r"cpa-lint:\s*allow\(([^)]*)\)\s*:?\s*(.*?)\s*(\*/)?$")


def parse_suppressions(comments, tokens):
    """Returns ({line: [(rule_glob, reason)]}, [Finding for malformed])."""
    code_lines = sorted({t.line for t in tokens})
    allows: dict[int, list[tuple[str, str]]] = {}
    bad: list[tuple[int, str]] = []
    for line, text, standalone in comments:
        m = ALLOW_RE.search(text)
        if m is None:
            if "cpa-lint" in text and "allow" in text:
                bad.append((line, "unparseable cpa-lint allow comment"))
            continue
        rule_glob = m.group(1).strip()
        reason = m.group(2).strip()
        if not reason:
            bad.append((line, "allow(%s) without a reason" % rule_glob))
            continue
        if not any(fnmatch.fnmatchcase(rid, rule_glob) for rid in RULE_IDS):
            bad.append((line, "allow(%s) names no known rule" % rule_glob))
            continue
        target = line
        if standalone:
            later = [ln for ln in code_lines if ln > line]
            if not later:
                bad.append((line, "allow(%s) precedes no code" % rule_glob))
                continue
            target = later[0]
        allows.setdefault(target, []).append((rule_glob, reason))
    return allows, bad


class TokenizerBackend:
    name = "tokenizer"

    def analyze(self, path: Path, rel: str) -> list[Finding]:
        text = path.read_text()
        tokens, _ = tokenize(text)
        findings: list[Finding] = []
        findings += self._unit_and_ovf(tokens, rel)
        findings += self._determinism(tokens, rel)
        return findings

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _statement_start(tokens, i):
        j = i
        while j > 0 and tokens[j].text not in (";", "{", "}"):
            j -= 1
        return j

    @staticmethod
    def _expr_start(tokens, dot_index):
        """Index of the first token of the member-access object expression."""
        j = dot_index - 1
        while j >= 0:
            t = tokens[j]
            if t.text in (")", "]"):
                opener = "(" if t.text == ")" else "["
                closer = t.text
                depth = 0
                while j >= 0:
                    if tokens[j].text == closer:
                        depth += 1
                    elif tokens[j].text == opener:
                        depth -= 1
                        if depth == 0:
                            break
                    j -= 1
                j -= 1
            elif t.kind in ("ident", "number"):
                j -= 1
            elif t.text in (".", "->", "::"):
                j -= 1
            else:
                break
        return j + 1

    @staticmethod
    def _match_balanced(tokens, open_index):
        """Index just past the paren/brace group opening at open_index."""
        opener = tokens[open_index].text
        closer = {"(": ")", "{": "}", "[": "]"}[opener]
        depth = 0
        for j in range(open_index, len(tokens)):
            if tokens[j].text == opener:
                depth += 1
            elif tokens[j].text == closer:
                depth -= 1
                if depth == 0:
                    return j + 1
        return len(tokens)

    # -- unit + ovf packs --------------------------------------------------

    def _unit_and_ovf(self, tokens, rel):
        findings = []
        for i, tok in enumerate(tokens):
            if tok.kind != "ident" or tok.text not in ("count", "value"):
                continue
            if i == 0 or tokens[i - 1].text != ".":
                continue
            if i + 2 >= len(tokens) or tokens[i + 1].text != "(" or \
                    tokens[i + 2].text != ")":
                continue
            # std::chrono durations share the .count() spelling; a
            # duration_cast earlier in the statement marks the result as a
            # chrono duration, not a Quantity. (The clang backend decides
            # by type instead.)
            stmt = self._statement_start(tokens, i)
            if tok.text == "count" and any(
                    t.text == "duration_cast" for t in tokens[stmt:i]):
                continue
            rule = "unit.raw-count" if tok.text == "count" else \
                "unit.raw-value"
            member = "Quantity::count()" if tok.text == "count" else \
                "Id::value()"
            findings.append(Finding(
                rule, rel, tok.line,
                "raw %s escape; route through a named conversion in "
                "units.hpp (to_metric / to_index / to_scalar / to_payload "
                "/ ...)" % member))
            after = tokens[i + 3] if i + 3 < len(tokens) else None
            start = self._expr_start(tokens, i - 1)
            before = tokens[start - 1] if start > 0 else None
            # Integer-literal arithmetic on the raw representation.
            # `*` is classified as ovf.raw-mul below, matching the clang
            # backend's split.
            if after is not None and after.text in ("+", "-", "/", "%") and \
                    i + 4 < len(tokens) and tokens[i + 4].kind == "number":
                findings.append(Finding(
                    "unit.literal-arith", rel, tok.line,
                    "integer-literal arithmetic on a raw %s "
                    "representation" % member))
            # Raw-representation multiplication (ovf pack).
            if (after is not None and after.text == "*") or \
                    (before is not None and before.text == "*"):
                findings.append(Finding(
                    "ovf.raw-mul", rel, tok.line,
                    "multiplication of a raw representation bypasses the "
                    "CPA_CHECKED_ARITH trapping operators"))
        findings += self._narrowing_casts(tokens, rel)
        return findings

    def _narrowing_casts(self, tokens, rel):
        findings = []
        for i, tok in enumerate(tokens):
            if tok.text != "static_cast" or i + 1 >= len(tokens) or \
                    tokens[i + 1].text != "<":
                continue
            depth, j = 0, i + 1
            while j < len(tokens):
                if tokens[j].text == "<":
                    depth += 1
                elif tokens[j].text == ">":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            type_tokens = [t.text for t in tokens[i + 2:j]]
            if not any(t in NARROW_TYPES for t in type_tokens):
                continue
            if j + 1 >= len(tokens) or tokens[j + 1].text != "(":
                continue
            end = self._match_balanced(tokens, j + 1)
            arg = tokens[j + 2:end - 1]
            for k, t in enumerate(arg):
                if t.text in ("count", "value") and k > 0 and \
                        arg[k - 1].text == "." and k + 1 < len(arg) and \
                        arg[k + 1].text == "(":
                    findings.append(Finding(
                        "ovf.narrowing-cast", rel, tok.line,
                        "static_cast<%s> truncates a 64-bit quantity "
                        "representation" % " ".join(type_tokens)))
                    break
        return findings

    # -- det pack ----------------------------------------------------------

    def _determinism(self, tokens, rel):
        findings = []
        for i, tok in enumerate(tokens):
            if tok.kind != "ident":
                continue
            prev = tokens[i - 1] if i > 0 else None
            nxt = tokens[i + 1] if i + 1 < len(tokens) else None
            if tok.text in BANNED_CALLS and nxt is not None and \
                    nxt.text == "(" and \
                    (prev is None or prev.text not in (".", "->")):
                findings.append(Finding(
                    "det.banned-call", rel, tok.line,
                    "call to %s(): nondeterministic / global-state RNG" %
                    tok.text))
            elif tok.text == REFERENCE_WCRT_LOOP and nxt is not None and \
                    nxt.text == "(" and \
                    (prev is None or prev.text not in (".", "->")):
                findings.append(Finding(
                    "det.wcrt-reference-loop", rel, tok.line,
                    "reference Eq. (19) loop constructed outside the "
                    "WcrtEngine seam; select an engine via "
                    "AnalysisConfig::wcrt_engine instead"))
            elif tok.text == "time" and nxt is not None and \
                    nxt.text == "(" and prev is not None and \
                    prev.text == "::" and i >= 2 and \
                    tokens[i - 2].text == "std":
                findings.append(Finding(
                    "det.banned-call", rel, tok.line,
                    "std::time() used as an entropy source"))
            elif tok.text == "random_device":
                findings.append(Finding(
                    "det.random-device", rel, tok.line,
                    "std::random_device is nondeterministic"))
            elif tok.text in UNORDERED_CONTAINERS:
                findings.append(Finding(
                    "det.unordered-container", rel, tok.line,
                    "%s has unspecified iteration order; use std::map / "
                    "std::set or a sorted vector" % tok.text))
            elif tok.text in RNG_ENGINES:
                f = self._check_engine_seed(tokens, i, rel)
                if f is not None:
                    findings.append(f)
        findings += self._unordered_iter(tokens, rel)
        findings += self._parallel_bodies(tokens, rel)
        return findings

    def _unordered_iter(self, tokens, rel):
        """det.unordered-iter: ranged-for whose range expression is (or
        names a variable declared as) an unordered container."""
        findings = []
        # Pass 1: names declared with an unordered container type —
        # `std::unordered_map<K, V> [&|*|const]* name`.
        unordered_vars = set()
        for i, tok in enumerate(tokens):
            if tok.kind != "ident" or tok.text not in UNORDERED_CONTAINERS:
                continue
            j = i + 1
            if j < len(tokens) and tokens[j].text == "<":
                depth = 0
                while j < len(tokens):
                    if tokens[j].text == "<":
                        depth += 1
                    elif tokens[j].text == ">":
                        depth -= 1
                    elif tokens[j].text == ">>":
                        depth -= 2
                    j += 1
                    if depth <= 0:
                        break
            while j < len(tokens) and (tokens[j].text in ("&", "*") or
                                       tokens[j].text == "const"):
                j += 1
            if j < len(tokens) and tokens[j].kind == "ident":
                unordered_vars.add(tokens[j].text)
        # Pass 2: ranged-for statements (single ':' at paren depth 1).
        for i, tok in enumerate(tokens):
            if tok.kind != "ident" or tok.text != "for" or \
                    i + 1 >= len(tokens) or tokens[i + 1].text != "(":
                continue
            end = self._match_balanced(tokens, i + 1)
            head = tokens[i + 2:end - 1]
            depth, colon = 0, None
            for k, t in enumerate(head):
                if t.text in ("(", "[", "{"):
                    depth += 1
                elif t.text in (")", "]", "}"):
                    depth -= 1
                elif depth == 0 and t.text == ";":
                    break  # classic for(init; cond; step)
                elif depth == 0 and t.text == ":":
                    colon = k
                    break
            if colon is None:
                continue
            range_expr = head[colon + 1:]
            hit = any(t.kind == "ident" and
                      (t.text in UNORDERED_CONTAINERS or
                       t.text in unordered_vars) for t in range_expr)
            if hit:
                findings.append(Finding(
                    "det.unordered-iter", rel, tok.line,
                    "ranged-for over an unordered container: iteration "
                    "order is unspecified; iterate a sorted vector / "
                    "std::map view instead"))
        return findings

    def _check_engine_seed(self, tokens, i, rel):
        # Shapes: `std::mt19937_64 name(expr)`, `name{expr}`, or a
        # temporary `std::mt19937_64(expr)`. A bare member declaration
        # (no initializer) is fine — the constructor init list that seeds
        # it is checked at its own site only if the engine type is visible
        # there, so the fixture suite pins the declaration-with-initializer
        # shapes this codebase actually uses.
        j = i + 1
        if j < len(tokens) and tokens[j].kind == "ident":
            j += 1  # variable name
        if j >= len(tokens) or tokens[j].text not in ("(", "{"):
            return None
        end = self._match_balanced(tokens, j)
        args = tokens[j + 1:end - 1]
        if not args:
            return Finding(
                "det.raw-seed", rel, tokens[i].line,
                "%s default-constructed: seed it via util::seed_for" %
                tokens[i].text)
        if any("seed" in t.text for t in args if t.kind == "ident"):
            return None
        return Finding(
            "det.raw-seed", rel, tokens[i].line,
            "%s seeded from an expression that does not involve "
            "util::seed_for or a *seed* value" % tokens[i].text)

    def _parallel_bodies(self, tokens, rel):
        findings = []
        for i, tok in enumerate(tokens):
            if tok.kind != "ident" or \
                    tok.text not in PARALLEL_ENTRY_POINTS or \
                    i + 1 >= len(tokens) or tokens[i + 1].text != "(":
                continue
            end = self._match_balanced(tokens, i + 1)
            body = tokens[i + 2:end - 1]
            declared = set()
            for k, t in enumerate(body):
                if t.kind != "ident" or k == 0:
                    continue
                p = body[k - 1]
                f = body[k + 1] if k + 1 < len(body) else None
                if (p.kind == "ident" or p.text in (">", "&", "*")) and \
                        f is not None and f.text in ("=", "{", "(", ";", ","):
                    declared.add(t.text)
            for k, t in enumerate(body):
                if t.text in COMPOUND_ASSIGN_OPS and k > 0:
                    lhs = body[k - 1]
                    if lhs.kind == "ident" and lhs.text not in declared:
                        findings.append(Finding(
                            "det.parallel-accum", rel, lhs.line,
                            "'%s %s' updates shared state inside a "
                            "parallel body; write into a pre-sized "
                            "per-index slot and reduce in trial-index "
                            "order" % (lhs.text, t.text)))
                elif t.text == "fork" and k > 0 and \
                        body[k - 1].text == "." and \
                        k + 1 < len(body) and body[k + 1].text == "(":
                    findings.append(Finding(
                        "det.fork-in-parallel", rel, t.line,
                        "Rng::fork() inside a parallel body is "
                        "order-dependent; derive the stream with "
                        "util::seed_for(base, index)"))
        return findings


# ---------------------------------------------------------------------------
# Clang AST backend: same findings, decided by real types instead of token
# heuristics. Used when clang is available; --self-test cross-checks the two
# backends over the fixture suite.

QUANTITY_TYPE_RE = re.compile(
    r"\b(cpa::)?util::(Quantity|Cycles|Microseconds|AccessCount)\b")
ID_TYPE_RE = re.compile(r"\b(cpa::)?util::(Id<|TaskId|CoreId)")
CHRONO_TYPE_RE = re.compile(r"\b(std::)?chrono::")


def clang_binary():
    for name in ("clang++", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


class ClangAstBackend:
    name = "clang-ast"

    def __init__(self, repo: Path):
        self.repo = repo
        self.clang = clang_binary()
        if self.clang is None:
            raise RuntimeError(
                "clang backend requested but no clang/clang++ on PATH")

    def analyze(self, path: Path, rel: str) -> list[Finding]:
        cmd = [
            self.clang, "-std=c++20", "-fsyntax-only", "-w",
            "-I", str(self.repo / "src"),
            "-Xclang", "-ast-dump=json", str(path),
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if not proc.stdout:
            raise RuntimeError(
                "clang AST dump failed for %s:\n%s" % (rel, proc.stderr))
        root = json.loads(proc.stdout)
        self.findings: list[Finding] = []
        self.rel = rel
        self.target = str(path.resolve())
        self.cur_file = ""
        self.cur_line = 0
        self._walk(root, inside_lambda_decls=None)
        return self.findings

    # The clang JSON dump omits loc fields that repeat the previous
    # value, so the walk carries (file, line) state.
    def _update_loc(self, node):
        loc = node.get("loc") or {}
        for candidate in (loc.get("expansionLoc"), loc):
            if not candidate:
                continue
            if "file" in candidate:
                self.cur_file = candidate["file"]
            if "line" in candidate:
                self.cur_line = candidate["line"]
                return
        rng = node.get("range", {}).get("begin", {})
        for candidate in (rng.get("expansionLoc"), rng):
            if candidate and "line" in candidate:
                if "file" in candidate:
                    self.cur_file = candidate["file"]
                self.cur_line = candidate["line"]
                return

    def _in_target(self):
        return self.cur_file == self.target or \
            Path(self.cur_file).name == Path(self.target).name

    def _emit(self, rule, message):
        if self._in_target():
            self.findings.append(
                Finding(rule, self.rel, self.cur_line, message))

    @staticmethod
    def _qual_types(node):
        t = node.get("type", {})
        return " ".join(
            filter(None, (t.get("qualType"), t.get("desugaredQualType"))))

    def _member_call_kind(self, node):
        """'quantity' / 'id' / None for a MemberExpr .count()/.value()."""
        if node.get("kind") != "MemberExpr":
            return None
        name = node.get("name")
        if name not in ("count", "value"):
            return None
        inner = node.get("inner") or []
        if not inner:
            return None
        base_type = self._qual_types(inner[0])
        if CHRONO_TYPE_RE.search(base_type):
            return None
        if name == "count" and QUANTITY_TYPE_RE.search(base_type):
            return "quantity"
        if name == "value" and ID_TYPE_RE.search(base_type):
            return "id"
        return None

    @classmethod
    def _is_int_literal(cls, node):
        """IntegerLiteral, possibly behind implicit casts / parens."""
        while isinstance(node, dict):
            kind = node.get("kind")
            if kind == "IntegerLiteral":
                return True
            if kind not in ("ImplicitCastExpr", "ConstantExpr",
                            "ParenExpr"):
                return False
            inner = node.get("inner") or []
            if not inner:
                return False
            node = inner[0]
        return False

    def _contains_raw_unwrap(self, node):
        if isinstance(node, dict):
            if self._member_call_kind(node):
                return True
            return any(self._contains_raw_unwrap(c)
                       for c in node.get("inner") or [])
        return False

    def _subtree_var_decl_ids(self, node, out):
        if isinstance(node, dict):
            if node.get("kind") in ("VarDecl", "ParmVarDecl"):
                out.add(node.get("id"))
            for c in node.get("inner") or []:
                self._subtree_var_decl_ids(c, out)

    def _walk(self, node, inside_lambda_decls):
        if not isinstance(node, dict):
            return
        self._update_loc(node)
        saved = (self.cur_file, self.cur_line)
        kind = node.get("kind")

        unwrap = self._member_call_kind(node)
        if unwrap is not None:
            member = "Quantity::count()" if unwrap == "quantity" else \
                "Id::value()"
            rule = "unit.raw-count" if unwrap == "quantity" else \
                "unit.raw-value"
            self._emit(rule,
                       "raw %s escape; route through a named conversion "
                       "in units.hpp" % member)

        if kind == "BinaryOperator" and node.get("opcode") == "*":
            if any(self._contains_raw_unwrap(c)
                   for c in node.get("inner") or []):
                self._emit("ovf.raw-mul",
                           "multiplication of a raw representation "
                           "bypasses CPA_CHECKED_ARITH")
        if kind == "BinaryOperator" and \
                node.get("opcode") in ("+", "-", "/", "%"):
            inner = node.get("inner") or []
            if len(inner) == 2:
                if any(self._is_int_literal(c) for c in inner) and any(
                        self._contains_raw_unwrap(c) for c in inner):
                    self._emit("unit.literal-arith",
                               "integer-literal arithmetic on a raw "
                               "representation")
        if kind == "CXXStaticCastExpr":
            dest = self._qual_types(node)
            dest_tokens = re.findall(r"\w+", dest)
            if any(t in NARROW_TYPES for t in dest_tokens) and \
                    self._contains_raw_unwrap(node):
                self._emit("ovf.narrowing-cast",
                           "static_cast<%s> truncates a 64-bit quantity "
                           "representation" % dest)

        if kind in ("DeclRefExpr", "MemberExpr"):
            ref = node.get("referencedDecl", {})
            name = ref.get("name") or node.get("name")
            if name in BANNED_CALLS and \
                    ref.get("kind") == "FunctionDecl":
                self._emit("det.banned-call",
                           "call to %s(): nondeterministic RNG" % name)
            if name == "time" and ref.get("kind") == "FunctionDecl":
                self._emit("det.banned-call",
                           "std::time() used as an entropy source")
            if name == REFERENCE_WCRT_LOOP and \
                    ref.get("kind") == "FunctionDecl":
                self._emit("det.wcrt-reference-loop",
                           "reference Eq. (19) loop constructed outside "
                           "the WcrtEngine seam; select an engine via "
                           "AnalysisConfig::wcrt_engine instead")
        if kind == "FunctionDecl" and \
                node.get("name") == REFERENCE_WCRT_LOOP:
            self._emit("det.wcrt-reference-loop",
                       "definition of the reference Eq. (19) loop outside "
                       "the WcrtEngine seam; only wcrt.cpp may host it")
        if kind == "CXXForRangeStmt" and \
                self._range_over_unordered(node):
            self._emit("det.unordered-iter",
                       "ranged-for over an unordered container: iteration "
                       "order is unspecified; iterate a sorted vector / "
                       "std::map view instead")
        qt = self._qual_types(node)
        if kind in ("VarDecl", "FieldDecl", "ParmVarDecl"):
            if "random_device" in qt:
                self._emit("det.random-device",
                           "std::random_device is nondeterministic")
            if any(u in qt for u in UNORDERED_CONTAINERS):
                self._emit("det.unordered-container",
                           "unordered container has unspecified iteration "
                           "order")
            engine = next((e for e in RNG_ENGINES if re.search(
                r"\b%s\b" % e, qt)), None)
            if engine is not None and node.get("init"):
                names: set[str] = set()
                self._collect_ref_names(node, names)
                if not any("seed" in n for n in names):
                    self._emit("det.raw-seed",
                               "%s seeded without util::seed_for / a "
                               "*seed* value" % engine)

        if kind == "CallExpr":
            callee_name = self._callee_name(node)
            if callee_name in PARALLEL_ENTRY_POINTS or (
                    kind == "CXXMemberCallExpr" and
                    callee_name in PARALLEL_ENTRY_POINTS):
                lam = self._find_lambda(node)
                if lam is not None:
                    decls: set = set()
                    self._subtree_var_decl_ids(lam, decls)
                    self._walk_lambda_body(lam, decls)
        if kind == "CXXMemberCallExpr":
            callee_name = self._callee_name(node)
            if callee_name in PARALLEL_ENTRY_POINTS:
                lam = self._find_lambda(node)
                if lam is not None:
                    decls = set()
                    self._subtree_var_decl_ids(lam, decls)
                    self._walk_lambda_body(lam, decls)

        for child in node.get("inner") or []:
            self._walk(child, inside_lambda_decls)
        self.cur_file, self.cur_line = saved

    def _range_over_unordered(self, node):
        """True when a CXXForRangeStmt's implicit __range variable has an
        unordered container type (clang materializes the range expression
        into a `__rangeN` VarDecl inside the statement)."""
        if not isinstance(node, dict):
            return False
        if node.get("kind") == "VarDecl" and \
                str(node.get("name", "")).startswith("__range"):
            qt = self._qual_types(node)
            return any(u in qt for u in UNORDERED_CONTAINERS)
        return any(self._range_over_unordered(c)
                   for c in node.get("inner") or [])

    def _collect_ref_names(self, node, out):
        if isinstance(node, dict):
            ref = node.get("referencedDecl")
            if ref and ref.get("name"):
                out.add(ref["name"])
            if node.get("kind") in ("DeclRefExpr", "MemberExpr") and \
                    node.get("name"):
                out.add(node["name"])
            member = node.get("name")
            if isinstance(member, str):
                out.add(member)
            for c in node.get("inner") or []:
                self._collect_ref_names(c, out)

    def _callee_name(self, node):
        inner = node.get("inner") or []
        if not inner:
            return None
        names: set[str] = set()
        self._collect_ref_names(inner[0], names)
        for cand in PARALLEL_ENTRY_POINTS:
            if cand in names:
                return cand
        return None

    def _find_lambda(self, node):
        if isinstance(node, dict):
            if node.get("kind") == "LambdaExpr":
                return node
            for c in node.get("inner") or []:
                found = self._find_lambda(c)
                if found is not None:
                    return found
        return None

    def _walk_lambda_body(self, node, declared_ids):
        if not isinstance(node, dict):
            return
        self._update_loc(node)
        saved = (self.cur_file, self.cur_line)
        if node.get("kind") == "CompoundAssignOperator":
            inner = node.get("inner") or []
            if inner:
                lhs = inner[0]
                ref = lhs.get("referencedDecl", {})
                if lhs.get("kind") == "DeclRefExpr" and \
                        ref.get("id") not in declared_ids:
                    self._emit("det.parallel-accum",
                               "'%s' updated inside a parallel body; use "
                               "the pre-sized-slot reduction idiom" %
                               ref.get("name"))
        if node.get("kind") in ("CXXMemberCallExpr",):
            names: set[str] = set()
            inner = node.get("inner") or []
            if inner:
                self._collect_ref_names(inner[0], names)
            if "fork" in names:
                self._emit("det.fork-in-parallel",
                           "Rng::fork() inside a parallel body")
        for c in node.get("inner") or []:
            self._walk_lambda_body(c, declared_ids)
        self.cur_file, self.cur_line = saved


# ---------------------------------------------------------------------------
# Suppression + whitelist application (backend-independent).

def load_whitelist(path: Path):
    entries = []
    if not path.exists():
        return entries
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        code, _, comment = line.partition("#")
        parts = code.split()
        if len(parts) != 2 or not comment.strip():
            raise SystemExit(
                "cpa_lint: %s:%d: whitelist entries are "
                "'<rule-glob> <path-glob>  # reason' (reason mandatory)" %
                (path, lineno))
        entries.append((parts[0], parts[1], comment.strip()))
    return entries


def apply_filters(findings, rel, source_text, whitelist):
    tokens, comments = tokenize(source_text)
    allows, bad = parse_suppressions(comments, tokens)
    kept = []
    for f in findings:
        for rule_glob, path_glob, _reason in whitelist:
            if fnmatch.fnmatchcase(f.rule, rule_glob) and \
                    fnmatch.fnmatchcase(f.path, path_glob):
                f.suppressed = True
                f.suppression_reason = "whitelist: %s %s" % (
                    rule_glob, path_glob)
                break
        if not f.suppressed:
            for rule_glob, reason in allows.get(f.line, []):
                if fnmatch.fnmatchcase(f.rule, rule_glob):
                    f.suppressed = True
                    f.suppression_reason = reason
                    break
        kept.append(f)
    for line, message in bad:
        kept.append(Finding("meta.bad-suppression", rel, line, message))
    return kept


# ---------------------------------------------------------------------------
# Layering pass: scripts/check_layers.py folded in.

def run_layering(repo: Path, findings: list[Finding]):
    script = repo / "scripts" / "check_layers.py"
    proc = subprocess.run(
        [sys.executable, str(script), "--repo", str(repo), "--no-compile"],
        capture_output=True, text=True)
    if proc.returncode == 0:
        return
    parsed_any = False
    for line in (proc.stdout + proc.stderr).splitlines():
        m = re.match(r"LAYERING VIOLATION:\s*(.*)", line.strip())
        if m is None:
            continue
        problem = m.group(1)
        # check_layers problems lead with a src-relative `path:line:` when
        # they are tied to a file; structural problems (cycles, unknown
        # modules) are attributed to src/ as a whole.
        loc = re.match(r"([\w/.-]+\.(?:hpp|cpp|h|cc)):(\d+):", problem)
        path = "src/" + loc.group(1) if loc else "src"
        lineno = int(loc.group(2)) if loc else 0
        findings.append(Finding("layering.violation", path, lineno,
                                problem))
        parsed_any = True
    if not parsed_any:
        findings.append(Finding(
            "layering.violation", "src", 0,
            "check_layers.py failed (exit %d): %s" %
            (proc.returncode, (proc.stdout + proc.stderr).strip()[:400])))


# ---------------------------------------------------------------------------
# Driver.

def iter_sources(repo: Path, roots):
    for root in roots:
        base = repo / root
        for ext in ("*.cpp", "*.hpp"):
            yield from sorted(base.rglob(ext))


def lint_tree(repo, backend, whitelist, roots, with_layering):
    findings = []
    for path in iter_sources(repo, roots):
        rel = path.relative_to(repo).as_posix()
        file_findings = backend.analyze(path, rel)
        findings += apply_filters(file_findings, rel, path.read_text(),
                                  whitelist)
    if with_layering:
        run_layering(repo, findings)
    return findings


def make_backend(choice, repo):
    if choice == "tokenizer":
        return TokenizerBackend()
    if choice == "clang":
        return ClangAstBackend(repo)
    # auto: prefer clang when present, else tokenizer — never silently
    # skip analysis altogether.
    if clang_binary() is not None:
        try:
            return ClangAstBackend(repo)
        except RuntimeError:
            pass
    return TokenizerBackend()


def report(findings, as_json, backend_name, out=sys.stdout):
    active = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]
    if as_json:
        json.dump({
            "tool": "cpa-lint",
            "backend": backend_name,
            "findings": [
                {"rule": f.rule, "path": f.path, "line": f.line,
                 "message": f.message} for f in active],
            "suppressed": [
                {"rule": f.rule, "path": f.path, "line": f.line,
                 "reason": f.suppression_reason} for f in suppressed],
            "summary": {"active": len(active),
                        "suppressed": len(suppressed)},
        }, out, indent=2)
        out.write("\n")
    else:
        for f in active:
            out.write("%s:%d: [%s] %s\n" % (f.path, f.line, f.rule,
                                            f.message))
        out.write("cpa-lint (%s): %d finding(s), %d suppressed\n" %
                  (backend_name, len(active), len(suppressed)))
    return 1 if active else 0


# ---------------------------------------------------------------------------
# Self-test over the fixture suite. Layout: tests/lint_fixtures/<rule>/
# {bad*.cpp,good*.cpp}. Every bad fixture must trigger its rule; every good
# fixture must not. When clang is available both backends run and must
# agree on the per-fixture rule-hit sets.

def self_test(repo: Path) -> int:
    fixture_root = repo / "tests" / "lint_fixtures"
    if not fixture_root.is_dir():
        print("cpa_lint --self-test: missing %s" % fixture_root)
        return 2
    backends = [TokenizerBackend()]
    if clang_binary() is not None:
        backends.append(ClangAstBackend(repo))
    else:
        print("cpa_lint --self-test: clang not found; backend-agreement "
              "half runs on the tokenizer only (CI runs both)")
    failures = 0
    per_backend_hits: dict[str, dict[str, set]] = {}
    for backend in backends:
        hits: dict[str, set] = {}
        for rule_dir in sorted(p for p in fixture_root.iterdir()
                               if p.is_dir()):
            rule = rule_dir.name
            if rule not in RULE_IDS and rule != "suppression":
                print("FAIL: fixture dir %s names no known rule" % rule_dir)
                failures += 1
                continue
            for fixture in sorted(rule_dir.glob("*.cpp")):
                rel = fixture.relative_to(repo).as_posix()
                raw = backend.analyze(fixture, rel)
                filtered = apply_filters(raw, rel, fixture.read_text(), [])
                active = {f.rule for f in filtered if not f.suppressed}
                hits[rel] = active
                expect_rule = rule if rule != "suppression" else \
                    "meta.bad-suppression"
                if fixture.name.startswith("bad"):
                    if expect_rule not in active:
                        print("FAIL[%s]: %s did not trigger %s (got %s)" %
                              (backend.name, rel, expect_rule,
                               sorted(active) or "nothing"))
                        failures += 1
                elif fixture.name.startswith("good"):
                    if expect_rule in active:
                        print("FAIL[%s]: clean fixture %s triggered %s" %
                              (backend.name, rel, expect_rule))
                        failures += 1
        per_backend_hits[backend.name] = hits
    if len(backends) == 2:
        tok = per_backend_hits["tokenizer"]
        cla = per_backend_hits["clang-ast"]
        for rel in sorted(set(tok) | set(cla)):
            if tok.get(rel, set()) != cla.get(rel, set()):
                print("FAIL: backend disagreement on %s: tokenizer=%s "
                      "clang=%s" % (rel, sorted(tok.get(rel, set())),
                                    sorted(cla.get(rel, set()))))
                failures += 1
    # The layering pass self-check rides along so one entry point proves
    # the whole engine.
    proc = subprocess.run(
        [sys.executable, str(repo / "scripts" / "check_layers.py"),
         "--self-test"], capture_output=True, text=True)
    if proc.returncode != 0:
        print("FAIL: check_layers.py --self-test:\n%s" %
              (proc.stdout + proc.stderr))
        failures += 1
    total_fixtures = len(list(fixture_root.glob("*/*.cpp")))
    print("cpa_lint --self-test: %d fixtures, %d backend(s), %d failure(s)"
          % (total_fixtures, len(backends), failures))
    return 1 if failures else 0


def list_rules(out=sys.stdout):
    width = max(len(r.id) for r in RULES)
    for r in RULES:
        out.write("%-*s  [%s] %s\n" % (width, r.id, r.pack, r.rationale))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="cpa_lint.py",
        description="Project-specific static analysis (unit / det / ovf / "
                    "layering rule packs)")
    parser.add_argument("--repo", type=Path, default=REPO_ROOT,
                        help="repository root (default: script's parent)")
    parser.add_argument("--src", action="append", default=None,
                        metavar="DIR",
                        help="source roots relative to the repo "
                             "(default: src)")
    parser.add_argument("--backend",
                        choices=["auto", "tokenizer", "clang"],
                        default="auto")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    parser.add_argument("--rules", metavar="GLOBS",
                        help="comma-separated rule-id globs to keep")
    parser.add_argument("--no-layering", action="store_true",
                        help="skip the check_layers.py pass")
    parser.add_argument("--whitelist", type=Path, default=None,
                        help="whitelist file (default: "
                             "scripts/cpa_lint_whitelist.txt)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture suite (and backend "
                             "agreement when clang is available)")
    args = parser.parse_args(argv)

    if args.list_rules:
        list_rules()
        return 0
    repo = args.repo.resolve()
    if args.self_test:
        return self_test(repo)

    whitelist_path = args.whitelist or \
        repo / "scripts" / "cpa_lint_whitelist.txt"
    whitelist = load_whitelist(whitelist_path)
    try:
        backend = make_backend(args.backend, repo)
    except RuntimeError as err:
        print("cpa_lint: %s" % err, file=sys.stderr)
        return 2
    roots = args.src or ["src"]
    findings = lint_tree(repo, backend, whitelist, roots,
                         with_layering=not args.no_layering)
    if args.rules:
        globs = [g.strip() for g in args.rules.split(",") if g.strip()]
        findings = [f for f in findings if any(
            fnmatch.fnmatchcase(f.rule, g) for g in globs)]
    return report(findings, args.json, backend.name)


if __name__ == "__main__":
    sys.exit(main())
